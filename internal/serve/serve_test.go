package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"liquidarch/internal/config"
	"liquidarch/internal/core"
	"liquidarch/internal/measure"
	"liquidarch/internal/progs"
	"liquidarch/internal/serve"
	"liquidarch/internal/workload"
)

func newTestServer(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(serve.Options{Workers: 2, CacheEntries: 256})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, req serve.JobRequest) serve.JobStatus {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getJob(t *testing.T, ts *httptest.Server, id string) serve.JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitDone(t *testing.T, ts *httptest.Server, id string) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st := getJob(t, ts, id)
		if st.Terminal() {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return serve.JobStatus{}
}

// TestTuneOverHTTPMatchesCLI is the end-to-end acceptance test: a job
// tuned over HTTP must select exactly the configuration the in-process
// tuner (and therefore the autoarch CLI) selects.
func TestTuneOverHTTPMatchesCLI(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t)

	w1, w2 := 100.0, 1.0
	st := postJob(t, ts, serve.JobRequest{
		App: "arith", Scale: "tiny", Space: "dcache", W1: &w1, W2: &w2,
	})
	if st.State != serve.StateQueued && st.State != serve.StateRunning {
		t.Fatalf("fresh job state = %s", st.State)
	}
	st = waitDone(t, ts, st.ID)
	if st.State != serve.StateDone {
		t.Fatalf("job state = %s, error = %s", st.State, st.Error)
	}
	if st.Result == nil {
		t.Fatal("done job has no result")
	}

	// The same tuning, in process.
	b, _ := progs.ByName("arith")
	tuner := &core.Tuner{Space: config.DcacheGeometrySpace(), Scale: workload.Tiny}
	model, err := tuner.BuildModel(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tuner.RecommendFromModel(model, core.Weights{W1: w1, W2: w2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := st.Result.Recommendation.Config, rec.Config.String(); got != want {
		t.Errorf("HTTP-tuned config:\n%s\nCLI-tuned config:\n%s", got, want)
	}
	if got, want := strings.Join(st.Result.Recommendation.Changes, " "), strings.Join(rec.Changes, " "); got != want {
		t.Errorf("HTTP changes %q, CLI changes %q", got, want)
	}
	if st.Result.Base.Cycles != model.BaseCycles {
		t.Errorf("HTTP base cycles %d, CLI %d", st.Result.Base.Cycles, model.BaseCycles)
	}
}

// TestStreamDeliversTerminalState exercises the ndjson status stream.
func TestStreamDeliversTerminalState(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t)
	st := postJob(t, ts, serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache"})

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	var last serve.JobStatus
	states := []string{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad stream line: %v", err)
		}
		states = append(states, last.State)
	}
	if !last.Terminal() {
		t.Fatalf("stream ended in non-terminal state %s (saw %v)", last.State, states)
	}
	if last.State != serve.StateDone {
		t.Fatalf("job failed: %s (states %v)", last.Error, states)
	}
	if last.Result == nil {
		t.Error("terminal stream snapshot has no result")
	}
}

// TestJobsShareOneCache verifies the scheduler's whole point: two jobs
// for the same (app, scale, space) share measurements through the one
// provider, so the second job is nearly all cache hits.
func TestJobsShareOneCache(t *testing.T) {
	t.Parallel()
	s, ts := newTestServer(t)
	first := postJob(t, ts, serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache"})
	waitDone(t, ts, first.ID)
	missesAfterFirst := s.Cache().Stats().Misses

	second := postJob(t, ts, serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache"})
	st := waitDone(t, ts, second.ID)
	if st.State != serve.StateDone {
		t.Fatalf("second job: %s %s", st.State, st.Error)
	}
	stats := s.Cache().Stats()
	if stats.Misses != missesAfterFirst {
		t.Errorf("second identical job added %d cache misses, want 0", stats.Misses-missesAfterFirst)
	}
	if stats.Hits == 0 {
		t.Error("no cache hits after two identical jobs")
	}
}

// TestCancelQueuedJob covers DELETE on a job that never started.
func TestCancelQueuedJob(t *testing.T) {
	t.Parallel()
	// One worker, and occupy it with a long job so the second queues.
	s := serve.New(serve.Options{Workers: 1, CacheEntries: 256})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	blocker := postJob(t, ts, serve.JobRequest{App: "blastn", Scale: "tiny"})
	victim := postJob(t, ts, serve.JobRequest{App: "drr", Scale: "tiny"})

	reqURL := ts.URL + "/v1/jobs/" + victim.ID
	httpReq, _ := http.NewRequest(http.MethodDelete, reqURL, nil)
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != serve.StateCancelled && !st.Terminal() {
		// The scheduler may have started it already on a fast machine;
		// cancellation of a running job resolves asynchronously.
		st = waitDone(t, ts, victim.ID)
	}
	if st.State == serve.StateDone {
		t.Errorf("cancelled job still completed")
	}
	waitDone(t, ts, blocker.ID)
}

// TestMetricsEndpoint sanity-checks the counters document.
func TestMetricsEndpoint(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t)
	st := postJob(t, ts, serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache"})
	waitDone(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m serve.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Cache == nil {
		t.Fatal("metrics missing cache stats")
	}
	if m.Cache.Misses == 0 {
		t.Error("cache misses = 0 after a tuning job")
	}
	if m.Cache.Capacity != 256 {
		t.Errorf("cache capacity = %d, want 256", m.Cache.Capacity)
	}
	if m.Jobs[serve.StateDone] == 0 {
		t.Error("metrics count no done jobs")
	}
	if m.Pool.EngineLimit <= 0 {
		t.Error("pool metrics missing engine limit")
	}
}

// TestBadRequests covers the 4xx paths.
func TestBadRequests(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t)
	for _, tc := range []serve.JobRequest{
		{App: "nope"},
		{App: "arith", Scale: "huge"},
		{App: "arith", Space: "weird"},
	} {
		body, _ := json.Marshal(tc)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %+v: status %d, want 400", tc, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET missing job: status %d, want 404", resp.StatusCode)
	}
}

// TestPersistentProviderServesRestart drives the daemon's persistence
// story end to end: a second server over the same store directory answers
// a repeated job without a single new simulation.
func TestPersistentProviderServesRestart(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	req := serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache"}

	run := func() (measure.CacheStats, serve.JobStatus) {
		store, err := measure.NewStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		cache := measure.NewCache(measure.NewPersistent(measure.Simulator{}, store), 256)
		s := serve.New(serve.Options{Workers: 1, Provider: cache})
		ts := httptest.NewServer(s.Handler())
		defer func() {
			ts.Close()
			s.Close()
		}()
		st := postJob(t, ts, req)
		st = waitDone(t, ts, st.ID)
		return cache.Stats(), st
	}

	_, st1 := run()
	if st1.State != serve.StateDone {
		t.Fatalf("first run: %s %s", st1.State, st1.Error)
	}
	store, _ := measure.NewStore(dir)
	if store.Len() == 0 {
		t.Fatal("store empty after first run")
	}

	_, st2 := run()
	if st2.State != serve.StateDone {
		t.Fatalf("second run: %s %s", st2.State, st2.Error)
	}
	if st1.Result.Recommendation.Config != st2.Result.Recommendation.Config {
		t.Errorf("restart changed the recommendation:\n%s\nvs\n%s",
			st1.Result.Recommendation.Config, st2.Result.Recommendation.Config)
	}
	if st1.Result.Base.Cycles != st2.Result.Base.Cycles {
		t.Errorf("restart changed base cycles: %d vs %d", st1.Result.Base.Cycles, st2.Result.Base.Cycles)
	}
}
