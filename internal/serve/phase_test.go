package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"liquidarch/internal/config"
	"liquidarch/internal/core"
	"liquidarch/internal/progs"
	"liquidarch/internal/serve"
	"liquidarch/internal/workload"
)

// TestPhaseJobMatchesCLI is the phase-mode acceptance test: a phase job
// served over HTTP must produce byte-for-byte the core.PhaseReport the
// in-process tuner (and therefore `autoarch -phases -json`) produces.
func TestPhaseJobMatchesCLI(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t)

	st := postJob(t, ts, serve.JobRequest{
		App: "blastn", Scale: "tiny", Space: "dcache",
		Phases: true, IntervalInstructions: 20_000,
	})
	st = waitDone(t, ts, st.ID)
	if st.State != serve.StateDone {
		t.Fatalf("job state = %s, error = %s", st.State, st.Error)
	}
	if st.Result != nil {
		t.Error("phase job should not carry a plain TuneReport")
	}
	if st.PhaseResult == nil {
		t.Fatal("done phase job has no phase result")
	}

	// The same tuning, in process.
	b, _ := progs.ByName("blastn")
	tuner := &core.Tuner{Space: config.DcacheGeometrySpace(), Scale: workload.Tiny}
	want, err := tuner.TunePhases(context.Background(), b, core.Weights{W1: 100, W2: 1},
		core.PhaseOptions{IntervalInstructions: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := want.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := st.PhaseResult.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("daemon phase report differs from in-process tuning:\n%s\nvs\n%s", gotJSON, wantJSON)
	}
	if st.PhaseResult.Phases == nil || st.PhaseResult.Phases.Trace == nil || st.PhaseResult.Phases.Trace.Phases == 0 {
		t.Error("phase result has no trace")
	}
}

// streamStatuses collects every ndjson snapshot of a job until it ends.
func streamStatuses(t *testing.T, ts *httptest.Server, id string) []serve.JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []serve.JobStatus
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var st serve.JobStatus
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatalf("bad stream line: %v", err)
		}
		out = append(out, st)
	}
	if len(out) == 0 {
		t.Fatal("empty stream")
	}
	return out
}

// checkProgress asserts a streamed job exposed monotonic k-of-N
// measurement progress reaching total.
func checkProgress(t *testing.T, statuses []serve.JobStatus, total int) {
	t.Helper()
	last := statuses[len(statuses)-1]
	if last.State != serve.StateDone {
		t.Fatalf("job ended %s: %s", last.State, last.Error)
	}
	seen, prev := 0, 0
	for _, st := range statuses {
		if st.Progress == nil {
			continue
		}
		seen++
		if st.Progress.Total != total {
			t.Fatalf("progress total %d, want %d", st.Progress.Total, total)
		}
		if st.Progress.Done < prev {
			t.Fatalf("progress went backwards: %d after %d", st.Progress.Done, prev)
		}
		prev = st.Progress.Done
	}
	if seen == 0 {
		t.Fatal("no progress snapshots in the stream")
	}
	if prev != total {
		t.Errorf("final progress %d of %d", prev, total)
	}
}

// TestPlainJobStreamsMeasurementProgress: the ndjson stream of an
// ordinary tuning job carries per-measurement progress — base + one per
// variable + validation.
func TestPlainJobStreamsMeasurementProgress(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t)
	st := postJob(t, ts, serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache"})
	statuses := streamStatuses(t, ts, st.ID)
	checkProgress(t, statuses, config.DcacheGeometrySpace().Len()+2)
}

// TestPhaseJobStreamsMeasurementProgress: phase jobs stream the same
// per-measurement progress (base + one per variable; no validation run).
func TestPhaseJobStreamsMeasurementProgress(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t)
	st := postJob(t, ts, serve.JobRequest{
		App: "arith", Scale: "tiny", Space: "dcache",
		Phases: true, IntervalInstructions: 10_000,
	})
	statuses := streamStatuses(t, ts, st.ID)
	checkProgress(t, statuses, config.DcacheGeometrySpace().Len()+1)
}

// TestPhaseJobDedupDistinctFromPlain: a phase job must not coalesce with
// a plain job of the same app/scale/space, nor with a phase job of a
// different interval.
func TestPhaseJobDedupDistinctFromPlain(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t)
	plain := postJob(t, ts, serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache"})
	phased := postJob(t, ts, serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache", Phases: true})
	other := postJob(t, ts, serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache", Phases: true, IntervalInstructions: 5_000})

	pst := waitDone(t, ts, plain.ID)
	fst := waitDone(t, ts, phased.ID)
	ost := waitDone(t, ts, other.ID)
	if pst.Result == nil || pst.PhaseResult != nil {
		t.Error("plain job result shape wrong")
	}
	if fst.PhaseResult == nil || fst.Result != nil {
		t.Error("phase job result shape wrong")
	}
	if ost.PhaseResult == nil {
		t.Fatal("second phase job has no result")
	}
	if fst.PhaseResult.Phases.IntervalInstructions == ost.PhaseResult.Phases.IntervalInstructions {
		t.Error("distinct intervals coalesced onto one flight")
	}
}
