package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"liquidarch/internal/fabric"
	"liquidarch/internal/measure"
	"liquidarch/internal/serve"
)

// newFabricWorker stands up a worker-role daemon: a serve.Server whose
// only fabric job is answering POST /v1/measure through its own counting
// provider. Returns the counter (simulations this worker actually ran)
// and the worker's HTTP endpoint.
func newFabricWorker(t *testing.T) (*countingProvider, *httptest.Server) {
	t.Helper()
	counting := &countingProvider{inner: measure.Simulator{}}
	w := fabric.NewWorker(measure.NewCache(counting, 256), 4)
	s := serve.New(serve.Options{Workers: 1, Worker: w, CacheEntries: 16})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return counting, ts
}

// newCoordinator stands up a coordinator-role daemon whose provider
// stack is Cache(Remote(registry, fallback=counting(Simulator))) — the
// same shape cmd/autoarchd wires with -fabric. Returns the fabric
// Remote, the coordinator's local-simulation counter, and the endpoint.
func newCoordinator(t *testing.T, opts fabric.RemoteOptions) (*fabric.Remote, *countingProvider, *httptest.Server) {
	t.Helper()
	local := &countingProvider{inner: measure.Simulator{}}
	remote := fabric.NewRemote(fabric.NewRegistry(), local, opts)
	s := serve.New(serve.Options{
		Workers:  1,
		Provider: measure.NewCache(remote, 1024),
		Fabric:   remote,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return remote, local, ts
}

// registerWorker registers a worker with the coordinator over the wire
// (POST /v1/workers), exactly as the heartbeat loop does.
func registerWorker(t *testing.T, coord *httptest.Server, reg fabric.Registration) {
	t.Helper()
	body, _ := json.Marshal(reg)
	resp, err := http.Post(coord.URL+"/v1/workers", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST /v1/workers: status %d", resp.StatusCode)
	}
}

func postBatch(t *testing.T, ts *httptest.Server, req serve.BatchRequest) serve.JobStatus {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/batch: status %d", resp.StatusCode)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// postJobStatus submits a job and returns the HTTP status code without
// failing on non-202 — for admission-control assertions.
func postJobStatus(t *testing.T, ts *httptest.Server, req serve.JobRequest) int {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func fptr(v float64) *float64 { return &v }

// TestFabricTwoWorkersShardSweep is the headline distributed e2e: a
// coordinator with two registered workers tunes the full 52-variable
// space, every measurement dispatches remotely (zero coordinator-local
// simulations, zero fallbacks), and the consistent-hash sharding splits
// the sweep so each worker simulates a strict, non-empty subset whose
// counts sum to the whole.
func TestFabricTwoWorkersShardSweep(t *testing.T) {
	t.Parallel()
	w1Count, w1 := newFabricWorker(t)
	w2Count, w2 := newFabricWorker(t)
	_, local, coord := newCoordinator(t, fabric.RemoteOptions{Backoff: time.Millisecond})
	registerWorker(t, coord, fabric.Registration{ID: "w1", URL: w1.URL})
	registerWorker(t, coord, fabric.Registration{ID: "w2", URL: w2.URL})

	st := postJob(t, coord, serve.JobRequest{App: "arith", Scale: "tiny", Space: "full"})
	st = waitDone(t, coord, st.ID)
	if st.State != serve.StateDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}

	m := metricsOf(t, coord)
	if m.Fabric == nil || m.Fabric.Remote == nil {
		t.Fatal("coordinator metrics have no fabric.remote section")
	}
	r := m.Fabric.Remote
	if r.Fallbacks != 0 {
		t.Fatalf("fallbacks = %d, want 0 with both workers live", r.Fallbacks)
	}
	if got := local.calls.Load(); got != 0 {
		t.Fatalf("coordinator ran %d local simulations, want 0", got)
	}
	if r.Dispatched == 0 || r.RemoteHits != r.Dispatched {
		t.Fatalf("dispatched %d remote hits %d, want equal and > 0", r.Dispatched, r.RemoteHits)
	}
	if r.LiveWorkers != 2 {
		t.Fatalf("live workers = %d, want 2", r.LiveWorkers)
	}

	// Each worker simulated a strict non-empty subset of the sweep, and
	// together they account for every dispatched measurement.
	served := [2]uint64{}
	for i, ts := range []*httptest.Server{w1, w2} {
		wm := metricsOf(t, ts)
		if wm.Fabric == nil || wm.Fabric.Worker == nil {
			t.Fatalf("worker %d metrics have no fabric.worker section", i+1)
		}
		served[i] = wm.Fabric.Worker.Served
		if served[i] == 0 || served[i] >= r.Dispatched {
			t.Fatalf("worker %d served %d of %d, want a strict non-empty subset",
				i+1, served[i], r.Dispatched)
		}
	}
	if sum := served[0] + served[1]; sum != r.Dispatched {
		t.Fatalf("worker served %d + %d = %d, want %d dispatched", served[0], served[1],
			served[0]+served[1], r.Dispatched)
	}
	// The shards stayed sticky: the configs each worker measured reached
	// its cache's counting provider exactly once apiece.
	if w1Count.calls.Load() == 0 || w2Count.calls.Load() == 0 {
		t.Fatalf("worker simulations %d / %d, want both > 0",
			w1Count.calls.Load(), w2Count.calls.Load())
	}
}

// TestFabricWorkerDeathFallsBack kills one of two workers: the
// coordinator must retry its shard, sideline the dead worker, answer
// that shard locally, and still converge — loudly (retries, fallbacks,
// and the mark-down all visible in /v1/metrics).
func TestFabricWorkerDeathFallsBack(t *testing.T) {
	t.Parallel()
	_, live := newFabricWorker(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	_, local, coord := newCoordinator(t, fabric.RemoteOptions{Retries: 1, Backoff: time.Millisecond})
	registerWorker(t, coord, fabric.Registration{ID: "w-live", URL: live.URL})
	registerWorker(t, coord, fabric.Registration{ID: "w-dead", URL: deadURL})

	st := postJob(t, coord, serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache"})
	st = waitDone(t, coord, st.ID)
	if st.State != serve.StateDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}

	r := metricsOf(t, coord).Fabric.Remote
	if r.Retries == 0 || r.Fallbacks == 0 || r.MarkedDown == 0 {
		t.Fatalf("retries %d fallbacks %d marked down %d, want all > 0 after a worker death",
			r.Retries, r.Fallbacks, r.MarkedDown)
	}
	if local.calls.Load() == 0 {
		t.Fatal("dead worker's shard never reached the coordinator's local provider")
	}
	if r.RemoteHits == 0 {
		t.Fatal("surviving worker served nothing")
	}
	if r.LiveWorkers != 1 {
		t.Fatalf("live workers = %d, want 1 after mark-down", r.LiveWorkers)
	}
}

// TestFabricAllWorkersDownFallsBackLocal registers a fleet that is
// entirely unreachable: the tune must complete on the coordinator's
// local provider with every substitution counted — degraded, never
// silent.
func TestFabricAllWorkersDownFallsBackLocal(t *testing.T) {
	t.Parallel()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	_, local, coord := newCoordinator(t, fabric.RemoteOptions{Retries: 1, Backoff: time.Millisecond})
	registerWorker(t, coord, fabric.Registration{ID: "w-dead", URL: deadURL})

	st := postJob(t, coord, serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache"})
	st = waitDone(t, coord, st.ID)
	if st.State != serve.StateDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}

	r := metricsOf(t, coord).Fabric.Remote
	if r.Fallbacks == 0 {
		t.Fatal("no fallbacks counted with the whole fleet down")
	}
	if r.RemoteHits != 0 {
		t.Fatalf("remote hits = %d from an unreachable fleet", r.RemoteHits)
	}
	if local.calls.Load() == 0 {
		t.Fatal("coordinator ran no local simulations")
	}
}

// TestWorkerEndpointRegistersAndExpires drives the registration
// endpoint directly: a worker registered with a short TTL is live until
// it stops heartbeating, then the sweep drops it.
func TestWorkerEndpointRegistersAndExpires(t *testing.T) {
	t.Parallel()
	_, _, coord := newCoordinator(t, fabric.RemoteOptions{})
	registerWorker(t, coord, fabric.Registration{ID: "w-brief", URL: "http://127.0.0.1:1", TTLSeconds: 0.05})

	resp, err := http.Get(coord.URL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	var workers []fabric.WorkerInfo
	if err := json.NewDecoder(resp.Body).Decode(&workers); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(workers) != 1 || !workers[0].Live {
		t.Fatalf("worker table %+v, want one live worker", workers)
	}

	time.Sleep(100 * time.Millisecond)
	r := metricsOf(t, coord).Fabric.Remote
	if r.LiveWorkers != 0 || r.Expired == 0 {
		t.Fatalf("live %d expired %d after TTL, want 0 live and an expiry", r.LiveWorkers, r.Expired)
	}
}

// TestBatchOneModelBuild submits a four-weighting sweep through
// POST /v1/batch: one flight, one model build, four solves, four
// reports in item order.
func TestBatchOneModelBuild(t *testing.T) {
	t.Parallel()
	s := serve.New(serve.Options{Workers: 1, CacheEntries: 512})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	req := serve.BatchRequest{
		JobRequest: serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache", Class: serve.ClassBulk},
		Weightings: []serve.Weighting{
			{W1: 1, W2: 0},
			{W1: 0.75, W2: 0.25},
			{W1: 0.5, W2: 0.5},
			{W1: 0, W2: 1},
		},
	}
	st := postBatch(t, ts, req)
	st = waitDone(t, ts, st.ID)
	if st.State != serve.StateDone {
		t.Fatalf("batch state %s: %s", st.State, st.Error)
	}
	if len(st.Results) != len(req.Weightings) {
		t.Fatalf("got %d results, want %d", len(st.Results), len(req.Weightings))
	}
	for i, rep := range st.Results {
		if rep == nil {
			t.Fatalf("result %d is nil", i)
		}
		if rep.Weights.W1 != req.Weightings[i].W1 || rep.Weights.W2 != req.Weightings[i].W2 {
			t.Fatalf("result %d weights %g:%g, want %g:%g", i,
				rep.Weights.W1, rep.Weights.W2, req.Weightings[i].W1, req.Weightings[i].W2)
		}
	}

	m := metricsOf(t, ts)
	if m.Models == nil || m.Models.Builds != 1 {
		t.Fatalf("models = %+v, want exactly 1 build for the whole sweep", m.Models)
	}
	if m.Models.Hits < uint64(len(req.Weightings)-1) {
		t.Fatalf("model hits = %d, want >= %d", m.Models.Hits, len(req.Weightings)-1)
	}
	if m.Scheduler.Batches != 1 {
		t.Fatalf("scheduler.batches = %d, want 1", m.Scheduler.Batches)
	}
}

// TestBatchPriorityInteractiveFirst holds a bulk batch open on the
// single scheduler worker, queues another bulk job and then an
// interactive one: the interactive job must start before the earlier-
// submitted bulk job.
func TestBatchPriorityInteractiveFirst(t *testing.T) {
	t.Parallel()
	gate := make(chan struct{})
	s := serve.New(serve.Options{
		Workers:  1,
		Provider: measure.NewCache(&gatedProvider{inner: measure.Simulator{}, gate: gate}, 512),
	})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	running := postBatch(t, ts, serve.BatchRequest{
		JobRequest: serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache", Class: serve.ClassBulk},
		Weightings: []serve.Weighting{{W1: 1, W2: 0}, {W1: 0, W2: 1}},
	})
	// Wait for the batch to occupy the lone worker before queueing.
	deadline := time.Now().Add(10 * time.Second)
	for getJob(t, ts, running.ID).Started == nil {
		if time.Now().After(deadline) {
			t.Fatal("batch never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	bulk := postJob(t, ts, serve.JobRequest{
		App: "arith", Scale: "tiny", Space: "dcache", Class: serve.ClassBulk,
		W1: fptr(0.6), W2: fptr(0.4),
	})
	inter := postJob(t, ts, serve.JobRequest{
		App: "arith", Scale: "tiny", Space: "dcache",
		W1: fptr(0.7), W2: fptr(0.3),
	})
	if m := metricsOf(t, ts); m.Scheduler.BulkQueued != 1 || m.Scheduler.InteractiveQueued != 1 {
		t.Fatalf("queued bulk %d interactive %d, want 1 and 1",
			m.Scheduler.BulkQueued, m.Scheduler.InteractiveQueued)
	}

	close(gate)
	interDone := waitDone(t, ts, inter.ID)
	bulkDone := waitDone(t, ts, bulk.ID)
	if interDone.State != serve.StateDone || bulkDone.State != serve.StateDone {
		t.Fatalf("states %s / %s, want both done", interDone.State, bulkDone.State)
	}
	if !interDone.Started.Before(*bulkDone.Started) {
		t.Fatalf("interactive started %v, bulk started %v: interactive must preempt the earlier bulk job",
			interDone.Started, bulkDone.Started)
	}
}

// TestBulkAdmissionControl fills the bulk class's queue budget: the
// next bulk submission is refused with 503 while an interactive job is
// still admitted under its own budget.
func TestBulkAdmissionControl(t *testing.T) {
	t.Parallel()
	gate := make(chan struct{})
	s := serve.New(serve.Options{
		Workers:        1,
		QueueDepth:     8,
		BulkQueueDepth: 1,
		Provider:       measure.NewCache(&gatedProvider{inner: measure.Simulator{}, gate: gate}, 512),
	})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	first := postJob(t, ts, serve.JobRequest{
		App: "arith", Scale: "tiny", Space: "dcache", Class: serve.ClassBulk,
		W1: fptr(1), W2: fptr(0),
	})
	deadline := time.Now().Add(10 * time.Second)
	for getJob(t, ts, first.ID).Started == nil {
		if time.Now().After(deadline) {
			t.Fatal("first bulk job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	queued := postJob(t, ts, serve.JobRequest{
		App: "arith", Scale: "tiny", Space: "dcache", Class: serve.ClassBulk,
		W1: fptr(0.9), W2: fptr(0.1),
	})
	if code := postJobStatus(t, ts, serve.JobRequest{
		App: "arith", Scale: "tiny", Space: "dcache", Class: serve.ClassBulk,
		W1: fptr(0.8), W2: fptr(0.2),
	}); code != http.StatusServiceUnavailable {
		t.Fatalf("third bulk job: status %d, want 503 past the bulk budget", code)
	}
	inter := postJob(t, ts, serve.JobRequest{
		App: "arith", Scale: "tiny", Space: "dcache",
		W1: fptr(0.7), W2: fptr(0.3),
	})

	close(gate)
	for _, id := range []string{first.ID, queued.ID, inter.ID} {
		if st := waitDone(t, ts, id); st.State != serve.StateDone {
			t.Fatalf("job %s state %s: %s", id, st.State, st.Error)
		}
	}
}
