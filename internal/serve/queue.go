package serve

import "sync"

// Job classes: the two levels of the scheduler's priority queue.
// Interactive is the default — a human waiting on one answer. Bulk is
// for sweeps (batches, experiment harnesses): admitted under its own
// depth limit and only run when no interactive work is waiting, so a
// night-long sweep never delays a single interactive tune by more than
// the flight already running.
const (
	ClassInteractive = "interactive"
	ClassBulk        = "bulk"
)

// flightQueue is the scheduler's two-level priority queue with
// per-class admission control. Workers always drain interactive
// flights before bulk ones; each class has its own depth limit so a
// bulk flood cannot exhaust the interactive admission budget (and vice
// versa). It replaces a plain channel, preserving its two contracts:
// push on a full class fails immediately (the 503 path), and close
// lets workers drain what was admitted before they exit.
type flightQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	levels [2][]*flight // 0 = interactive, 1 = bulk
	depths [2]int
	closed bool
}

func newFlightQueue(interactiveDepth, bulkDepth int) *flightQueue {
	q := &flightQueue{depths: [2]int{interactiveDepth, bulkDepth}}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// level maps a normalized class to its queue level.
func level(class string) int {
	if class == ClassBulk {
		return 1
	}
	return 0
}

// push admits a flight to its class's queue; false means the class is
// at its depth limit (or the queue is closed) and the flight was not
// admitted.
func (q *flightQueue) push(f *flight, class string) bool {
	lv := level(class)
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.levels[lv]) >= q.depths[lv] {
		return false
	}
	q.levels[lv] = append(q.levels[lv], f)
	q.cond.Signal()
	return true
}

// pop blocks until a flight is available — interactive strictly before
// bulk — or the queue is closed and drained (ok false).
func (q *flightQueue) pop() (*flight, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for lv := range q.levels {
			if n := len(q.levels[lv]); n > 0 {
				f := q.levels[lv][0]
				copy(q.levels[lv], q.levels[lv][1:])
				q.levels[lv] = q.levels[lv][:n-1]
				return f, true
			}
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// close rejects further pushes and wakes every waiting worker; already
// admitted flights are still handed out.
func (q *flightQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// lens snapshots the per-class backlog (interactive, bulk).
func (q *flightQueue) lens() (int, int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.levels[0]), len(q.levels[1])
}
