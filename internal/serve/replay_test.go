package serve_test

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"testing"

	"liquidarch/internal/serve"
)

// TestReplayJobEndToEnd is the daemon's closed-loop acceptance test: a
// replay+online phase job over HTTP returns the conformance blocks —
// modeled-vs-replayed error within bound, divergences counted — and the
// /v1/metrics tuning counters record the replay and online runs and the
// phase switches they performed.
func TestReplayJobEndToEnd(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t)

	st := postJob(t, ts, serve.JobRequest{
		App: "mix", Scale: "tiny", Space: "dcache",
		Phases: true, IntervalInstructions: 20_000,
		Replay: true, Online: true,
	})
	st = waitDone(t, ts, st.ID)
	if st.State != serve.StateDone {
		t.Fatalf("job state = %s, error = %s", st.State, st.Error)
	}
	if st.PhaseResult == nil {
		t.Fatal("done replay job has no phase result")
	}
	rep := st.PhaseResult
	if rep.Replay == nil {
		t.Fatal("replay job result has no replay block")
	}
	if rep.Online == nil {
		t.Fatal("online job result has no online block")
	}
	if math.Abs(rep.Replay.ErrorPct) > 5 {
		t.Errorf("modeled-vs-replayed error %.3f%% out of bounds", rep.Replay.ErrorPct)
	}
	if rep.Replay.Switches == 0 {
		t.Error("mix replay performed no configuration switches")
	}
	if rep.Online.Checksum != rep.Replay.Checksum {
		t.Error("online and replayed runs computed different checksums")
	}

	// The job's wire document reports divergences explicitly, even when
	// zero — a silent online run would be an unverifiable one.
	doc, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"divergences"`, `"unclassified"`, `"error_pct"`} {
		if !bytes.Contains(doc, []byte(key)) {
			t.Errorf("job document omits %s", key)
		}
	}

	// The tuning counters (process-wide, monotonic) must have recorded
	// the reshaping runs and their switches.
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m serve.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Tuning.ReplayRuns == 0 {
		t.Error("metrics report zero replay runs after a replay job")
	}
	if m.Tuning.OnlineRuns == 0 {
		t.Error("metrics report zero online runs after an online job")
	}
	if m.Tuning.ReplaySwitches == 0 {
		t.Error("metrics report zero replay switches after a switching replay")
	}
}

// TestReplayJobDedupDistinct: a replay job answers a different question
// than the plain phase job, so the two must not coalesce onto one
// flight; two identical replay jobs must.
func TestReplayJobDedupDistinct(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t)

	phases := postJob(t, ts, serve.JobRequest{
		App: "mix", Scale: "tiny", Space: "dcache",
		Phases: true, IntervalInstructions: 20_000,
	})
	replay := postJob(t, ts, serve.JobRequest{
		App: "mix", Scale: "tiny", Space: "dcache",
		Phases: true, IntervalInstructions: 20_000, Replay: true,
	})
	phasesSt := waitDone(t, ts, phases.ID)
	replaySt := waitDone(t, ts, replay.ID)
	if phasesSt.PhaseResult == nil || replaySt.PhaseResult == nil {
		t.Fatal("phase results missing")
	}
	if phasesSt.PhaseResult.Replay != nil {
		t.Error("plain phase job gained a replay block — coalesced with the replay job")
	}
	if replaySt.PhaseResult.Replay == nil {
		t.Error("replay job lost its replay block — coalesced with the plain job")
	}
}

// TestReplayJobRequiresPhases: replay/online without phases is a 4xx,
// not a silently ignored flag.
func TestReplayJobRequiresPhases(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t)
	for _, req := range []serve.JobRequest{
		{App: "mix", Scale: "tiny", Replay: true},
		{App: "mix", Scale: "tiny", Online: true},
	} {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("replay without phases returned %d, want 400", resp.StatusCode)
		}
	}
}
