package serve_test

import (
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"liquidarch/internal/serve"
)

var updateGoldens = flag.Bool("update", false, "rewrite the golden files")

func getMetrics(t *testing.T, ts *httptest.Server) serve.Metrics {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m serve.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestModelLayerSharesBuildsAcrossWeights is the shared-model-layer
// acceptance test at the daemon boundary: a second job for the same app
// and space under different weights completes with zero new simulations
// (the measurement cache) and zero new model builds (the session's
// model layer), both proven through /v1/metrics.
func TestModelLayerSharesBuildsAcrossWeights(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t)

	w1, w2 := 100.0, 1.0
	first := postJob(t, ts, serve.JobRequest{
		App: "arith", Scale: "tiny", Space: "dcache", W1: &w1, W2: &w2,
	})
	if st := waitDone(t, ts, first.ID); st.State != serve.StateDone {
		t.Fatalf("first job: %s %s", st.State, st.Error)
	}
	m1 := getMetrics(t, ts)
	if m1.Models == nil {
		t.Fatal("metrics missing the models block")
	}
	if m1.Models.Builds != 1 || m1.Models.Misses != 1 {
		t.Fatalf("after first job: models %+v, want 1 build / 1 miss", m1.Models)
	}

	// Same app and space, different weights: a distinct flight (no job
	// dedup), but the same model identity.
	rw1, rw2 := 1.0, 100.0
	second := postJob(t, ts, serve.JobRequest{
		App: "arith", Scale: "tiny", Space: "dcache", W1: &rw1, W2: &rw2,
	})
	st := waitDone(t, ts, second.ID)
	if st.State != serve.StateDone {
		t.Fatalf("second job: %s %s", st.State, st.Error)
	}
	m2 := getMetrics(t, ts)
	if m2.Models.Builds != 1 {
		t.Errorf("second weighting rebuilt the model: %d builds", m2.Models.Builds)
	}
	if m2.Models.Hits < 1 {
		t.Errorf("model layer hits = %d, want >= 1", m2.Models.Hits)
	}
	if m2.Cache == nil || m1.Cache == nil {
		t.Fatal("metrics missing cache stats")
	}
	if d := m2.Cache.Misses - m1.Cache.Misses; d != 0 {
		t.Errorf("second weighting ran %d new simulations, want 0", d)
	}
	if st.Result == nil || len(st.Result.Recommendation.Changes) == 0 {
		t.Error("second job's result incomplete")
	}
	if st.Result.Weights.W2 != 100 {
		t.Errorf("second job solved under %+v, want its own weights", st.Result.Weights)
	}
}

// TestV1ResultGoldens locks the v1 wire format byte-for-byte: the
// result document of a finished plain job and the phase_result of a
// finished phase job. The plain document is the same serialization the
// autoarch CLI golden locks — one Report shape across every surface.
func TestV1ResultGoldens(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t)

	check := func(name string, req serve.JobRequest) {
		st := postJob(t, ts, req)
		st = waitDone(t, ts, st.ID)
		if st.State != serve.StateDone {
			t.Fatalf("%s job: %s %s", name, st.State, st.Error)
		}
		result := st.Result
		if req.Phases {
			result = st.PhaseResult
		}
		if result == nil {
			t.Fatalf("%s job has no result", name)
		}
		got, err := result.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		golden := filepath.Join("testdata", name+".golden")
		if *updateGoldens {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("reading golden (run with -update to regenerate): %v", err)
		}
		if string(got) != string(want) {
			t.Errorf("%s v1 result drifted from golden %s\ngot:\n%s\nwant:\n%s", name, golden, got, want)
		}
	}

	w1, w2 := 100.0, 1.0
	check("v1_arith_tiny_dcache", serve.JobRequest{
		App: "arith", Scale: "tiny", Space: "dcache", W1: &w1, W2: &w2,
	})
	check("v1_blastn_tiny_dcache_phases", serve.JobRequest{
		App: "blastn", Scale: "tiny", Space: "dcache",
		Phases: true, IntervalInstructions: 20_000,
	})
}
