package obs

import (
	"context"
	"testing"
)

// disabledSpanCycle is the exact pattern the pipeline's hot path runs
// when tracing is off: start from an untraced context, annotate, end.
func disabledSpanCycle(ctx context.Context) {
	ctx2, span := Start(ctx, "measure")
	if span != nil {
		span.Set(String("outcome", "miss"))
	}
	span.End()
	_ = ctx2
}

// BenchmarkTracerDisabled is the disabled-tracer overhead budget of
// DESIGN.md §20: the no-op path must not allocate at all, so a session
// that nobody is tracing pays two context lookups and nothing else. The
// benchmark asserts 0 allocs/op — it fails, rather than merely
// reporting, when the no-op path regresses.
func BenchmarkTracerDisabled(b *testing.B) {
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(1000, func() { disabledSpanCycle(ctx) }); allocs != 0 {
		b.Fatalf("disabled tracer path allocates %.1f allocs/op, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disabledSpanCycle(ctx)
	}
}

// BenchmarkTracerEnabled prices the enabled path (span allocation,
// context value, record under the tracer lock) for the §20 budget table.
func BenchmarkTracerEnabled(b *testing.B) {
	tr := NewTracer(TracerOptions{MaxSpans: 1})
	ctx := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, span := Start(ctx, "measure")
		span.Set(String("outcome", "miss"))
		span.End()
	}
}
