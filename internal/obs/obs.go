// Package obs is the observability layer of the tuning stack: a
// lightweight span/trace API threaded through the whole pipeline
// (session tune → model build vs. artifact load → per-config
// measurement → BINLP solve → phase detection → schedule replay), plus
// bounded per-stage latency aggregation for the daemon's /v1/metrics.
//
// The design contract is that tracing is free when it is off. A span is
// started from a context (obs.Start); when no Tracer was installed on
// the context, Start returns the context unchanged and a nil *Span,
// and every *Span method is a nil-receiver no-op — zero allocations,
// no locks, no time reads (BenchmarkTracerDisabled asserts 0
// allocs/op, and DESIGN.md §20 states the overhead budget). When a
// Tracer is installed (obs.WithTracer), Start opens a child of the
// context's current span, carrying typed attributes (config hash,
// cache outcome, instruction count), and End records the completed
// span into the tracer's bounded buffer, feeds the optional Stages
// aggregator, and broadcasts to live subscribers.
//
// Consumers:
//
//   - core.Session.Tune opens the "tune" root and the model / solve /
//     validate / phase.detect / replay / online stage spans.
//   - measure.Cache opens one "measure" span per configuration with
//     the cache outcome attributed (hit, wait, miss); measure.Persistent
//     annotates the store and lease outcomes onto it.
//   - internal/serve traces every daemon job, serves the completed
//     span tree at GET /v1/trace/{jobID} (with an ndjson live-stream
//     variant) and merges per-stage histograms into /v1/metrics.
//   - autoarch -trace prints the human-readable stage breakdown.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// AttrKind says which field of an Attr carries the value.
type AttrKind string

// Attribute kinds.
const (
	KindString AttrKind = "str"
	KindInt    AttrKind = "int"
	KindBool   AttrKind = "bool"
)

// Attr is one typed span attribute. Exactly one of Str/Int is
// meaningful, selected by Kind (bools ride in Int as 0/1).
type Attr struct {
	Key  string   `json:"key"`
	Kind AttrKind `json:"kind"`
	Str  string   `json:"str,omitempty"`
	Int  int64    `json:"int,omitempty"`
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Kind: KindString, Str: value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, Kind: KindInt, Int: value} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr {
	a := Attr{Key: key, Kind: KindBool}
	if value {
		a.Int = 1
	}
	return a
}

// Value renders the attribute's value for human-readable output.
func (a Attr) Value() string {
	switch a.Kind {
	case KindString:
		return a.Str
	case KindBool:
		if a.Int != 0 {
			return "true"
		}
		return "false"
	default:
		return itoa(a.Int)
	}
}

// itoa is strconv.FormatInt(v, 10) without pulling strconv into the
// package's hot-path imports (it is only called on render paths).
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// SpanRecord is one completed span as recorded by its tracer (and as
// serialized by the daemon's trace endpoint). Parent 0 marks a root.
type SpanRecord struct {
	ID         uint64    `json:"id"`
	Parent     uint64    `json:"parent,omitempty"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationNs int64     `json:"duration_ns"`
	Attrs      []Attr    `json:"attrs,omitempty"`
}

// Duration returns the span's duration.
func (r SpanRecord) Duration() time.Duration { return time.Duration(r.DurationNs) }

// Attr returns the value of the named attribute and whether it is set.
func (r SpanRecord) Attr(key string) (Attr, bool) {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// Span is one live pipeline stage. Spans are produced by Start and
// closed by End; a nil *Span (tracing disabled) no-ops on every method.
// A span is owned by the goroutine that started it: Set and End must
// not race each other. Layers below the owner (the measurement stack
// annotating a cache outcome) run synchronously inside the owner's
// call, so the single-owner rule holds through the whole pipeline.
type Span struct {
	tracer *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
	ended  bool
}

// Set records attributes on the span, replacing any earlier attribute
// with the same key (a retried measurement overwrites its outcome
// rather than duplicating it). No-op on a nil span.
func (s *Span) Set(attrs ...Attr) {
	if s == nil {
		return
	}
next:
	for _, a := range attrs {
		for i := range s.attrs {
			if s.attrs[i].Key == a.Key {
				s.attrs[i] = a
				continue next
			}
		}
		s.attrs = append(s.attrs, a)
	}
}

// Enabled reports whether the span is live (tracing enabled).
func (s *Span) Enabled() bool { return s != nil }

// End closes the span and records it. No-op on a nil span; a second
// End is ignored, so `defer span.End()` composes with an explicit End
// on the happy path.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.tracer.record(SpanRecord{
		ID:         s.id,
		Parent:     s.parent,
		Name:       s.name,
		Start:      s.start,
		DurationNs: time.Since(s.start).Nanoseconds(),
		Attrs:      s.attrs,
	})
}

type spanKey struct{}
type tracerKey struct{}

// WithTracer installs a tracer on the context: spans started from the
// returned context (and its descendants) record into t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer (from WithTracer or an
// enclosing span), or nil when tracing is disabled.
func TracerFrom(ctx context.Context) *Tracer {
	if s, ok := ctx.Value(spanKey{}).(*Span); ok {
		return s.tracer
	}
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// Current returns the context's innermost live span, or nil. Lower
// layers use it to annotate the stage that called them (the persistent
// store stamping its outcome onto the measurement span) without
// threading span handles through every signature.
func Current(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Start opens a span named name: a child of the context's current span
// when one is live, a root span when only a tracer is installed, and a
// no-op (the context unchanged, a nil span) when tracing is disabled —
// the disabled path performs zero allocations.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		s := parent.tracer.newSpan(name, parent.id)
		if s == nil {
			return ctx, nil
		}
		return context.WithValue(ctx, spanKey{}, s), s
	}
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	s := t.newSpan(name, 0)
	if s == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// DefaultMaxSpans bounds a tracer's completed-span buffer when
// TracerOptions does not say otherwise. A tuning job emits a few spans
// per measured configuration plus a handful of stage spans — well
// under a thousand — so the default never truncates a normal job while
// still bounding a pathological one.
const DefaultMaxSpans = 4096

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// Stages, when set, receives every completed span's (name, duration)
	// observation — the per-stage histogram aggregation behind
	// /v1/metrics.
	Stages *Stages
	// MaxSpans bounds the completed-span buffer (<= 0 means
	// DefaultMaxSpans). Spans beyond the bound are counted as dropped,
	// not stored.
	MaxSpans int
}

// Tracer collects the spans of one trace — one CLI tune, one daemon
// job. It is safe for concurrent use (parallel measurement goroutines
// end spans concurrently); the completed-span buffer is bounded; live
// subscribers receive every completed span as it ends.
type Tracer struct {
	stages *Stages
	limit  int

	finished atomic.Bool

	mu      sync.Mutex
	nextID  uint64
	started time.Time
	spans   []SpanRecord
	dropped uint64
	subs    map[uint64]chan SpanRecord
	subSeq  uint64
}

// NewTracer builds a tracer.
func NewTracer(opts TracerOptions) *Tracer {
	limit := opts.MaxSpans
	if limit <= 0 {
		limit = DefaultMaxSpans
	}
	return &Tracer{
		stages:  opts.Stages,
		limit:   limit,
		started: time.Now(),
		subs:    make(map[uint64]chan SpanRecord),
	}
}

// newSpan allocates a live span. A nil tracer (or a finished one)
// returns nil — the disabled no-op span.
func (t *Tracer) newSpan(name string, parent uint64) *Span {
	if t == nil || t.finished.Load() {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{tracer: t, id: id, parent: parent, name: name, start: time.Now()}
}

// record stores one completed span, feeds the stage aggregator, and
// broadcasts to subscribers (non-blocking: a slow subscriber misses
// spans rather than stalling the pipeline).
func (t *Tracer) record(rec SpanRecord) {
	if t.stages != nil {
		t.stages.Observe(rec.Name, time.Duration(rec.DurationNs))
	}
	t.mu.Lock()
	if len(t.spans) < t.limit {
		t.spans = append(t.spans, rec)
	} else {
		t.dropped++
	}
	for _, ch := range t.subs {
		select {
		case ch <- rec:
		default:
		}
	}
	t.mu.Unlock()
}

// Finish marks the trace complete: new spans are refused (Start
// returns nil) and every live subscriber's channel is closed. Idempotent.
func (t *Tracer) Finish() {
	if t == nil || !t.finished.CompareAndSwap(false, true) {
		return
	}
	t.mu.Lock()
	for id, ch := range t.subs {
		close(ch)
		delete(t.subs, id)
	}
	t.mu.Unlock()
}

// Finished reports whether Finish has been called.
func (t *Tracer) Finished() bool { return t != nil && t.finished.Load() }

// Snapshot returns a copy of the trace so far (complete once Finish
// has run).
func (t *Tracer) Snapshot() *Trace {
	t.mu.Lock()
	spans := append([]SpanRecord(nil), t.spans...)
	dropped := t.dropped
	started := t.started
	t.mu.Unlock()
	return &Trace{Started: started, Complete: t.finished.Load(), Dropped: dropped, Spans: spans}
}

// Subscribe returns a channel that first replays every span already
// completed, then delivers each new span as it ends; the channel is
// closed when the trace finishes. The replay and the registration
// happen atomically, so no span is missed between them. cancel
// unregisters (idempotent, safe after close).
func (t *Tracer) Subscribe(buffer int) (<-chan SpanRecord, func()) {
	if buffer < 16 {
		buffer = 16
	}
	t.mu.Lock()
	ch := make(chan SpanRecord, len(t.spans)+buffer)
	for _, rec := range t.spans {
		ch <- rec
	}
	if t.finished.Load() {
		close(ch)
		t.mu.Unlock()
		return ch, func() {}
	}
	t.subSeq++
	id := t.subSeq
	t.subs[id] = ch
	t.mu.Unlock()
	return ch, func() {
		t.mu.Lock()
		if c, ok := t.subs[id]; ok {
			delete(t.subs, id)
			close(c)
		}
		t.mu.Unlock()
	}
}
