package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestDisabledIsNoOp(t *testing.T) {
	ctx := context.Background()
	ctx2, span := Start(ctx, "tune")
	if span != nil {
		t.Fatalf("Start without a tracer returned a live span")
	}
	if ctx2 != ctx {
		t.Fatalf("Start without a tracer changed the context")
	}
	// Every method must be nil-safe.
	span.Set(String("k", "v"), Int("n", 1), Bool("b", true))
	if span.Enabled() {
		t.Fatalf("nil span reports Enabled")
	}
	span.End()
	if Current(ctx2) != nil || TracerFrom(ctx2) != nil {
		t.Fatalf("disabled context leaked a span or tracer")
	}
}

func TestSpanTreeAndAttrs(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "tune")
	root.Set(String("app", "mix"))
	mctx, model := Start(ctx, "model")
	for i := 0; i < 3; i++ {
		_, m := Start(mctx, "measure")
		m.Set(String("outcome", "miss"), Int("instructions", int64(100+i)))
		m.Set(String("outcome", "hit")) // replace, not duplicate
		m.End()
	}
	model.End()
	_, solve := Start(ctx, "solve")
	solve.End()
	root.End()
	tr.Finish()

	if _, s := Start(ctx, "late"); s != nil {
		t.Fatalf("finished tracer issued a span")
	}

	trace := tr.Snapshot()
	if !trace.Complete {
		t.Fatalf("snapshot after Finish not complete")
	}
	if len(trace.Spans) != 6 {
		t.Fatalf("got %d spans, want 6", len(trace.Spans))
	}
	roots := trace.Tree()
	if len(roots) != 1 || roots[0].Name != "tune" {
		t.Fatalf("tree roots = %+v, want one tune root", roots)
	}
	if len(roots[0].Children) != 2 {
		t.Fatalf("tune has %d children, want 2 (model, solve)", len(roots[0].Children))
	}
	if roots[0].Children[0].Name != "model" || roots[0].Children[1].Name != "solve" {
		t.Fatalf("children out of start order: %s, %s", roots[0].Children[0].Name, roots[0].Children[1].Name)
	}
	measures := roots[0].Children[0].Children
	if len(measures) != 3 {
		t.Fatalf("model has %d measure children, want 3", len(measures))
	}
	for _, m := range measures {
		a, ok := m.Attr("outcome")
		if !ok || a.Str != "hit" {
			t.Fatalf("measure outcome attr = %+v (ok=%t), want replaced value hit", a, ok)
		}
		if n := len(m.Attrs); n != 2 {
			t.Fatalf("measure has %d attrs, want 2 (outcome replaced in place)", n)
		}
		if in, ok := m.Attr("instructions"); !ok || in.Kind != KindInt {
			t.Fatalf("instructions attr missing or untyped: %+v", in)
		}
	}

	rootRec, ok := trace.Root()
	if !ok || rootRec.Name != "tune" {
		t.Fatalf("Root() = %+v, %t", rootRec, ok)
	}
}

func TestBreakdownCoversRoot(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "tune")
	_, a := Start(ctx, "model")
	time.Sleep(2 * time.Millisecond)
	a.End()
	_, b := Start(ctx, "solve")
	time.Sleep(time.Millisecond)
	b.End()
	root.End()
	tr.Finish()

	rootRec, lines, ok := tr.Snapshot().Breakdown()
	if !ok {
		t.Fatalf("no root")
	}
	var sum float64
	for _, l := range lines {
		sum += l.Pct
	}
	if sum < 99.5 || sum > 100.5 {
		t.Fatalf("breakdown percentages sum to %.2f, want ~100", sum)
	}
	if lines[0].Name != "model" {
		t.Fatalf("first line %q, want model (start order)", lines[0].Name)
	}
	var covered time.Duration
	for _, l := range lines {
		covered += l.Duration
	}
	if covered < rootRec.Duration()*95/100 {
		t.Fatalf("lines cover %v of %v root", covered, rootRec.Duration())
	}
}

func TestStageTotalsOrder(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "tune")
	_, a := Start(ctx, "model")
	time.Sleep(2 * time.Millisecond)
	a.End()
	_, b := Start(ctx, "solve")
	b.End()
	root.End()
	tr.Finish()
	totals := tr.Snapshot().StageTotals()
	if len(totals) != 2 || totals[0].Name != "model" {
		t.Fatalf("StageTotals = %+v, want model first", totals)
	}
}

func TestTracerBoundDrops(t *testing.T) {
	tr := NewTracer(TracerOptions{MaxSpans: 2})
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 5; i++ {
		_, s := Start(ctx, "measure")
		s.End()
	}
	tr.Finish()
	trace := tr.Snapshot()
	if len(trace.Spans) != 2 || trace.Dropped != 3 {
		t.Fatalf("bounded tracer kept %d spans, dropped %d; want 2/3", len(trace.Spans), trace.Dropped)
	}
}

func TestSubscribeReplayLiveAndClose(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	ctx := WithTracer(context.Background(), tr)
	_, early := Start(ctx, "early")
	early.End()

	ch, cancel := tr.Subscribe(8)
	defer cancel()

	_, live := Start(ctx, "live")
	live.End()
	tr.Finish()

	var names []string
	for rec := range ch {
		names = append(names, rec.Name)
	}
	if len(names) != 2 || names[0] != "early" || names[1] != "live" {
		t.Fatalf("subscriber saw %v, want [early live]", names)
	}

	// Subscribing after Finish replays and closes immediately.
	ch2, cancel2 := tr.Subscribe(8)
	defer cancel2()
	n := 0
	for range ch2 {
		n++
	}
	if n != 2 {
		t.Fatalf("post-finish subscriber saw %d spans, want 2", n)
	}
}

func TestConcurrentSpans(t *testing.T) {
	stages := NewStages()
	tr := NewTracer(TracerOptions{Stages: stages})
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "tune")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, s := Start(ctx, "measure")
			s.Set(String("outcome", "miss"))
			s.End()
		}()
	}
	wg.Wait()
	root.End()
	tr.Finish()
	if got := len(tr.Snapshot().Spans); got != 33 {
		t.Fatalf("got %d spans, want 33", got)
	}
	snap := stages.Snapshot()
	if snap["measure"].Count != 32 {
		t.Fatalf("stage measure count = %d, want 32", snap["measure"].Count)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.observe(time.Duration(i) * time.Millisecond)
	}
	p50 := h.quantile(0.50)
	p99 := h.quantile(0.99)
	if p50 < 16e6 || p50 > 128e6 {
		t.Fatalf("p50 = %.0fns, want within bucket resolution of 50ms", p50)
	}
	if p99 < p50 {
		t.Fatalf("p99 (%.0f) < p50 (%.0f)", p99, p50)
	}
	if p99 > 100e6 {
		t.Fatalf("p99 = %.0fns exceeds observed max", p99)
	}

	// A single observation is exact (clamped to min/max).
	var one Histogram
	one.observe(3 * time.Millisecond)
	if got := one.quantile(0.5); got != 3e6 {
		t.Fatalf("single-observation p50 = %.0f, want exactly 3e6", got)
	}
}

func TestStagesSnapshot(t *testing.T) {
	s := NewStages()
	s.Observe("solve", 2*time.Millisecond)
	s.Observe("solve", 4*time.Millisecond)
	snap := s.Snapshot()
	st := snap["solve"]
	if st.Count != 2 || st.TotalMs != 6 || st.MeanMs != 3 {
		t.Fatalf("solve stats = %+v", st)
	}
	if st.MinMs != 2 || st.MaxMs != 4 {
		t.Fatalf("solve min/max = %v/%v", st.MinMs, st.MaxMs)
	}
	if names := s.Names(); len(names) != 1 || names[0] != "solve" {
		t.Fatalf("Names = %v", names)
	}
	// nil aggregator is a no-op surface.
	var nilStages *Stages
	nilStages.Observe("x", time.Second)
	if nilStages.Snapshot() != nil || nilStages.Names() != nil {
		t.Fatalf("nil Stages not inert")
	}
}

func TestAttrValueRendering(t *testing.T) {
	cases := []struct {
		a    Attr
		want string
	}{
		{String("k", "v"), "v"},
		{Int("k", 42), "42"},
		{Int("k", -7), "-7"},
		{Int("k", 0), "0"},
		{Bool("k", true), "true"},
		{Bool("k", false), "false"},
	}
	for _, c := range cases {
		if got := c.a.Value(); got != c.want {
			t.Fatalf("Value(%+v) = %q, want %q", c.a, got, c.want)
		}
	}
}
