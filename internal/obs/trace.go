package obs

import (
	"sort"
	"time"
)

// Trace is a snapshot of one tracer: the completed spans (in end
// order), whether the trace is finished, and how many spans the bound
// dropped. It is the wire document behind GET /v1/trace/{jobID}.
type Trace struct {
	Started  time.Time    `json:"started"`
	Complete bool         `json:"complete"`
	Dropped  uint64       `json:"dropped,omitempty"`
	Spans    []SpanRecord `json:"spans"`
}

// SpanNode is one span with its children — the tree form of a trace.
type SpanNode struct {
	SpanRecord
	Children []*SpanNode `json:"children,omitempty"`
}

// Tree assembles the span forest: roots in start order, each node's
// children in start order. Spans whose parent was dropped by the
// buffer bound surface as roots rather than vanishing.
func (t *Trace) Tree() []*SpanNode {
	nodes := make(map[uint64]*SpanNode, len(t.Spans))
	for _, rec := range t.Spans {
		nodes[rec.ID] = &SpanNode{SpanRecord: rec}
	}
	var roots []*SpanNode
	for _, rec := range t.Spans {
		n := nodes[rec.ID]
		if parent, ok := nodes[rec.Parent]; ok && rec.Parent != rec.ID {
			parent.Children = append(parent.Children, n)
			continue
		}
		roots = append(roots, n)
	}
	sortNodes(roots)
	for _, n := range nodes {
		sortNodes(n.Children)
	}
	return roots
}

func sortNodes(ns []*SpanNode) {
	sort.Slice(ns, func(a, b int) bool {
		if !ns[a].Start.Equal(ns[b].Start) {
			return ns[a].Start.Before(ns[b].Start)
		}
		return ns[a].ID < ns[b].ID
	})
}

// Root returns the longest root span of the trace (the "tune" span of
// a tuning run), or false for an empty trace.
func (t *Trace) Root() (SpanRecord, bool) {
	var best SpanRecord
	found := false
	for _, rec := range t.Spans {
		if rec.Parent != 0 {
			continue
		}
		if !found || rec.DurationNs > best.DurationNs {
			best, found = rec, true
		}
	}
	return best, found
}

// StageLine is one row of a stage breakdown: every same-named span
// aggregated, with its share of the root span's wall time.
type StageLine struct {
	Name     string        `json:"name"`
	Count    int           `json:"count"`
	Duration time.Duration `json:"duration_ns"`
	Pct      float64       `json:"pct"`
}

// Breakdown aggregates the root span's direct children by name, in
// first-start order, each with its percentage of the root's wall time
// — the flamegraph-summary view `autoarch -trace` prints. The trailing
// "other" line is the root's self time (wall not covered by any child),
// so the lines always sum to 100% of the root. ok is false for a trace
// with no root span.
func (t *Trace) Breakdown() (root SpanRecord, lines []StageLine, ok bool) {
	root, ok = t.Root()
	if !ok {
		return root, nil, false
	}
	type agg struct {
		line  StageLine
		first time.Time
	}
	byName := make(map[string]*agg)
	var order []*agg
	var covered time.Duration
	for _, rec := range t.Spans {
		if rec.Parent != root.ID {
			continue
		}
		a := byName[rec.Name]
		if a == nil {
			a = &agg{line: StageLine{Name: rec.Name}, first: rec.Start}
			byName[rec.Name] = a
			order = append(order, a)
		}
		a.line.Count++
		a.line.Duration += rec.Duration()
		covered += rec.Duration()
		if rec.Start.Before(a.first) {
			a.first = rec.Start
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].first.Before(order[j].first) })
	total := root.Duration()
	for _, a := range order {
		if total > 0 {
			a.line.Pct = 100 * float64(a.line.Duration) / float64(total)
		}
		lines = append(lines, a.line)
	}
	if self := total - covered; self > 0 && total > 0 {
		lines = append(lines, StageLine{
			Name:     "other",
			Count:    1,
			Duration: self,
			Pct:      100 * float64(self) / float64(total),
		})
	}
	return root, lines, true
}

// StageTotal aggregates every span of one name across the whole trace.
type StageTotal struct {
	Name     string
	Count    int
	Duration time.Duration
}

// StageTotals aggregates all spans by name (root spans excluded) and
// returns them longest-total first — the slow-job log's "where did the
// time go" summary. Note that nested stages overlap their parents, so
// the totals are per-stage attributions, not disjoint shares.
func (t *Trace) StageTotals() []StageTotal {
	byName := make(map[string]*StageTotal)
	var order []*StageTotal
	for _, rec := range t.Spans {
		if rec.Parent == 0 {
			continue
		}
		a := byName[rec.Name]
		if a == nil {
			a = &StageTotal{Name: rec.Name}
			byName[rec.Name] = a
			order = append(order, a)
		}
		a.Count++
		a.Duration += rec.Duration()
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].Duration != order[j].Duration {
			return order[i].Duration > order[j].Duration
		}
		return order[i].Name < order[j].Name
	})
	out := make([]StageTotal, len(order))
	for i, a := range order {
		out[i] = *a
	}
	return out
}
