package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"time"
)

// histBuckets is the fixed bucket count of a latency histogram: bucket
// i covers durations in [2^i, 2^(i+1)) nanoseconds, so 64 buckets span
// everything from 1 ns to centuries with ~2× resolution at constant
// memory — bounded by construction, no matter how many observations.
const histBuckets = 64

// Histogram is a bounded log2 latency histogram with exact count/sum
// and min/max, from which percentiles are estimated to within the
// bucket resolution. The zero value is ready to use; methods require
// external synchronization (Stages provides it).
type Histogram struct {
	count   uint64
	sumNs   uint64
	minNs   int64
	maxNs   int64
	buckets [histBuckets]uint64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(ns int64) int {
	if ns < 1 {
		return 0
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// observe records one duration.
func (h *Histogram) observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	if h.count == 0 || ns < h.minNs {
		h.minNs = ns
	}
	if ns > h.maxNs {
		h.maxNs = ns
	}
	h.count++
	h.sumNs += uint64(ns)
	h.buckets[bucketOf(ns)]++
}

// quantile estimates the q-quantile (0 < q <= 1) in nanoseconds: the
// geometric midpoint of the bucket holding the q-th observation,
// clamped to the observed min/max so single-observation histograms are
// exact.
func (h *Histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= rank {
			lo := math.Exp2(float64(i))
			est := lo * math.Sqrt2 // geometric midpoint of [2^i, 2^(i+1))
			if est < float64(h.minNs) {
				est = float64(h.minNs)
			}
			if est > float64(h.maxNs) {
				est = float64(h.maxNs)
			}
			return est
		}
	}
	return float64(h.maxNs)
}

// StageStats is the serialized aggregate of one pipeline stage: how
// many spans completed, the total and mean latency, and the estimated
// p50/p95/p99 — the per-stage block of /v1/metrics.
type StageStats struct {
	Count   uint64  `json:"count"`
	TotalMs float64 `json:"total_ms"`
	MeanMs  float64 `json:"mean_ms"`
	MinMs   float64 `json:"min_ms"`
	MaxMs   float64 `json:"max_ms"`
	P50Ms   float64 `json:"p50_ms"`
	P95Ms   float64 `json:"p95_ms"`
	P99Ms   float64 `json:"p99_ms"`
}

// Stages aggregates span latencies by stage name into bounded
// histograms. One Stages instance outlives its tracers: the daemon
// owns one, every job's tracer feeds it, and /v1/metrics snapshots it.
// Safe for concurrent use.
type Stages struct {
	mu sync.Mutex
	m  map[string]*Histogram
}

// NewStages builds an empty aggregator.
func NewStages() *Stages {
	return &Stages{m: make(map[string]*Histogram)}
}

// Observe records one completed stage latency.
func (s *Stages) Observe(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	h := s.m[name]
	if h == nil {
		h = &Histogram{}
		s.m[name] = h
	}
	h.observe(d)
	s.mu.Unlock()
}

// Snapshot returns the per-stage aggregates, keyed by stage name.
func (s *Stages) Snapshot() map[string]StageStats {
	if s == nil {
		return nil
	}
	ms := func(ns float64) float64 { return ns / 1e6 }
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]StageStats, len(s.m))
	for name, h := range s.m {
		st := StageStats{
			Count:   h.count,
			TotalMs: ms(float64(h.sumNs)),
			MinMs:   ms(float64(h.minNs)),
			MaxMs:   ms(float64(h.maxNs)),
			P50Ms:   ms(h.quantile(0.50)),
			P95Ms:   ms(h.quantile(0.95)),
			P99Ms:   ms(h.quantile(0.99)),
		}
		if h.count > 0 {
			st.MeanMs = ms(float64(h.sumNs) / float64(h.count))
		}
		out[name] = st
	}
	return out
}

// Names returns the known stage names, sorted — a deterministic
// iteration order for rendering snapshots.
func (s *Stages) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.m))
	for name := range s.m {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	return names
}
