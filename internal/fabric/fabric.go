// Package fabric is the distributed measurement subsystem: it promotes
// the measure.Provider stack from a per-process service to a remote,
// sharded fleet.
//
// Three pieces compose it:
//
//   - Registry — the coordinator's worker table. Workers announce
//     themselves with heartbeat registrations (POST /v1/workers, served
//     by internal/serve); a worker not heard from within its TTL is
//     dropped, so a killed worker never blackholes its shard.
//   - Worker — the worker-side measurement RPC handler
//     (POST /v1/measure): it reconstructs the wire program image
//     (memoized by fingerprint, so the worker's own cache and store
//     layers keep their pointer-keyed identity), measures through the
//     worker's local provider stack — the existing cache / persistent
//     store / claim-lease protocol, untouched — under a bounded
//     concurrency semaphore, and returns the serialized RunReport.
//   - Remote — a measure.Provider for the coordinator: each
//     measurement is dispatched to the live worker that
//     rendezvous-hashing elects for its measure.ConfigHash (one
//     configuration's measurements always land on the same worker, so
//     that worker's cache and on-disk store stay warm for it), with a
//     per-RPC timeout, bounded retry with backoff, and transparent
//     local fallback through the wrapped provider when the fleet
//     cannot answer. Remote results are also spilled to the
//     coordinator's shared store when one is wired, so the fabric
//     degrades to exactly the passive -cache-dir sharing it replaces.
//
// Every dispatch is traced (a "fabric.rpc" span nested under the
// measurement's "measure" span) and counted: dispatched, remote hits,
// retries, fallbacks and per-worker serve counts all surface under the
// fabric section of /v1/metrics. See DESIGN.md §21.
package fabric

import (
	"fmt"

	"liquidarch/internal/asm"
	"liquidarch/internal/cache"
	"liquidarch/internal/config"
	"liquidarch/internal/measure"
	"liquidarch/internal/platform"
	"liquidarch/internal/profiler"
)

// ProgramImage is the wire form of an assembled program: the load
// images and entry point — exactly the bytes measure.Fingerprint
// hashes, so the receiver can verify the sender's fingerprint.
// Symbols are deliberately omitted; measurement needs none.
type ProgramImage struct {
	TextBase uint32   `json:"text_base"`
	Text     []uint32 `json:"text"`
	DataBase uint32   `json:"data_base"`
	Data     []byte   `json:"data,omitempty"`
	Entry    uint32   `json:"entry"`
}

// ImageOf captures a program's wire image.
func ImageOf(p *asm.Program) ProgramImage {
	return ProgramImage{
		TextBase: p.TextBase,
		Text:     p.Text,
		DataBase: p.DataBase,
		Data:     p.Data,
		Entry:    p.Entry,
	}
}

// Program reconstructs the assembled program. The result is a fresh
// allocation — callers that care about pointer-keyed cache identity
// (the Worker) must memoize it by fingerprint.
func (im ProgramImage) Program() *asm.Program {
	return &asm.Program{
		TextBase: im.TextBase,
		Text:     im.Text,
		DataBase: im.DataBase,
		Data:     im.Data,
		Entry:    im.Entry,
	}
}

// MeasureRequest is the POST /v1/measure payload: one measurement of
// one program image on one timing configuration. The fingerprint names
// the image (and lets the worker verify and memoize it); the options
// subset is exactly the result-determining half of platform.Options —
// the execution-tuning knobs stay each host's own business.
type MeasureRequest struct {
	Fingerprint          string        `json:"fingerprint"`
	Prog                 ProgramImage  `json:"prog"`
	Config               config.Config `json:"config"`
	RAMBytes             int           `json:"ram_bytes,omitempty"`
	MaxInstructions      uint64        `json:"max_instructions,omitempty"`
	SampleInstructions   uint64        `json:"sample_instructions,omitempty"`
	IntervalInstructions uint64        `json:"interval_instructions,omitempty"`
}

// Options reassembles the run options the request carries.
func (r MeasureRequest) Options() platform.Options {
	return platform.Options{
		RAMBytes:             r.RAMBytes,
		MaxInstructions:      r.MaxInstructions,
		SampleInstructions:   r.SampleInstructions,
		IntervalInstructions: r.IntervalInstructions,
	}
}

// WireReport is the serialized RunReport of a measurement RPC — the
// same fields the persistent store spills, minus the configuration
// (the caller stamps its own back in, as every cache layer does).
type WireReport struct {
	Stats     profiler.Stats      `json:"stats"`
	ICache    cache.Stats         `json:"icache"`
	DCache    cache.Stats         `json:"dcache"`
	ExitCode  uint32              `json:"exit_code"`
	Checksum  uint32              `json:"checksum"`
	Console   string              `json:"console,omitempty"`
	Sampled   bool                `json:"sampled,omitempty"`
	Intervals []platform.Interval `json:"intervals,omitempty"`
}

// WireReportOf captures a run report for the wire.
func WireReportOf(rep *platform.RunReport) WireReport {
	return WireReport{
		Stats:     rep.Stats,
		ICache:    rep.ICache,
		DCache:    rep.DCache,
		ExitCode:  rep.ExitCode,
		Checksum:  rep.Checksum,
		Console:   rep.Console,
		Sampled:   rep.Sampled,
		Intervals: rep.Intervals,
	}
}

// Report reconstructs the run report with the caller's configuration
// stamped in.
func (w WireReport) Report(cfg config.Config) *platform.RunReport {
	return &platform.RunReport{
		Config:    cfg,
		Stats:     w.Stats,
		ICache:    w.ICache,
		DCache:    w.DCache,
		ExitCode:  w.ExitCode,
		Checksum:  w.Checksum,
		Console:   w.Console,
		Sampled:   w.Sampled,
		Intervals: w.Intervals,
	}
}

// MeasureResponse is the POST /v1/measure success document.
type MeasureResponse struct {
	Report WireReport `json:"report"`
}

// Registration is the POST /v1/workers payload: one heartbeat. A
// worker re-announces itself every heartbeat period; the coordinator
// treats a worker silent past its TTL as gone.
type Registration struct {
	// ID is the worker's stable identity (its shard assignment hashes
	// against it, so a restarted worker reclaiming its ID reclaims its
	// shard — and its warm store with it).
	ID string `json:"id"`
	// URL is the base address the coordinator dials for /v1/measure.
	URL string `json:"url"`
	// TTLSeconds is how long this registration stays live without a
	// fresh heartbeat (0 = DefaultWorkerTTL).
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
}

// Validate rejects an unusable registration before it enters the table.
func (r Registration) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("fabric: registration without id")
	}
	if r.URL == "" {
		return fmt.Errorf("fabric: registration without url")
	}
	if r.TTLSeconds < 0 {
		return fmt.Errorf("fabric: negative ttl")
	}
	return nil
}

// verifyFingerprint checks a wire image against its claimed identity
// via the same hash measure.Fingerprint computes.
func verifyFingerprint(req MeasureRequest) (*asm.Program, error) {
	prog := req.Prog.Program()
	if fp := measure.Fingerprint(prog); fp != req.Fingerprint {
		return nil, fmt.Errorf("fabric: program image hashes to %.12s, request claims %.12s", fp, req.Fingerprint)
	}
	return prog, nil
}
