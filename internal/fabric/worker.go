package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"liquidarch/internal/asm"
	"liquidarch/internal/measure"
	"liquidarch/internal/obs"
)

// WorkerStats is the worker-side half of the fabric metrics.
type WorkerStats struct {
	// Served counts measurement RPCs answered successfully (the
	// worker's local cache and store layers may still have answered
	// without simulating — their own counters say which).
	Served uint64 `json:"served"`
	// Errors counts RPCs that failed (bad request or measurement error).
	Errors uint64 `json:"errors"`
	// Active is the in-flight RPC count, MaxConcurrent its bound.
	Active        int64 `json:"active"`
	MaxConcurrent int   `json:"max_concurrent"`
	// Programs is how many distinct program images the worker holds.
	Programs int `json:"programs"`
}

// Worker serves measurement RPCs over a local provider stack: the
// existing cache / persistent-store / lease layers, untouched — the
// fabric only moves the request to them. Concurrency is bounded by a
// semaphore so a fleet-wide fan-out cannot oversubscribe one host;
// excess requests queue on the semaphore and honour the client's
// context while they wait.
type Worker struct {
	provider measure.Provider
	sem      chan struct{}
	max      int

	served atomic.Uint64
	errors atomic.Uint64
	active atomic.Int64

	// progs memoizes reconstructed program images by fingerprint:
	// measure.Key (and with it the worker's whole cache stack) is
	// pointer-keyed, so every RPC for one image must resolve to one
	// *asm.Program for the worker's cache to be worth anything.
	mu    sync.Mutex
	progs map[string]*asm.Program
}

// NewWorker builds a worker over the given provider. maxConcurrent
// bounds simultaneously executing RPCs (<= 0 means NumCPU).
func NewWorker(provider measure.Provider, maxConcurrent int) *Worker {
	if maxConcurrent <= 0 {
		maxConcurrent = runtime.NumCPU()
	}
	return &Worker{
		provider: provider,
		sem:      make(chan struct{}, maxConcurrent),
		max:      maxConcurrent,
		progs:    make(map[string]*asm.Program),
	}
}

// Stats snapshots the worker counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	programs := len(w.progs)
	w.mu.Unlock()
	return WorkerStats{
		Served:        w.served.Load(),
		Errors:        w.errors.Load(),
		Active:        w.active.Load(),
		MaxConcurrent: w.max,
		Programs:      programs,
	}
}

// program resolves a request's image to the worker's one *asm.Program
// for that fingerprint, verifying the image hash on first sight. The
// verification runs only on the memo miss, so the per-process
// fingerprint memo in package measure sees exactly one pointer per
// distinct image.
func (w *Worker) program(req MeasureRequest) (*asm.Program, error) {
	if req.Fingerprint == "" {
		return nil, fmt.Errorf("fabric: measure request without fingerprint")
	}
	w.mu.Lock()
	prog, ok := w.progs[req.Fingerprint]
	w.mu.Unlock()
	if ok {
		return prog, nil
	}
	prog, err := verifyFingerprint(req)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	if existing, ok := w.progs[req.Fingerprint]; ok {
		prog = existing // racing first requests: one pointer wins
	} else {
		w.progs[req.Fingerprint] = prog
	}
	w.mu.Unlock()
	return prog, nil
}

// Measure executes one RPC's measurement under the concurrency bound.
func (w *Worker) Measure(ctx context.Context, req MeasureRequest) (MeasureResponse, error) {
	prog, err := w.program(req)
	if err != nil {
		return MeasureResponse{}, err
	}
	if err := req.Config.Validate(); err != nil {
		return MeasureResponse{}, fmt.Errorf("fabric: invalid config: %w", err)
	}
	select {
	case w.sem <- struct{}{}:
	case <-ctx.Done():
		return MeasureResponse{}, ctx.Err()
	}
	w.active.Add(1)
	defer func() {
		w.active.Add(-1)
		<-w.sem
	}()
	rep, err := w.provider.Measure(ctx, prog, req.Config, req.Options())
	if err != nil {
		return MeasureResponse{}, err
	}
	w.served.Add(1)
	return MeasureResponse{Report: WireReportOf(rep)}, nil
}

// ServeHTTP handles POST /v1/measure.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	var req MeasureRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		w.errors.Add(1)
		writeWireError(rw, http.StatusBadRequest, fmt.Errorf("fabric: invalid measure request: %w", err))
		return
	}
	ctx, span := obs.Start(r.Context(), "fabric.measure")
	if span != nil {
		span.Set(obs.String("fingerprint", req.Fingerprint[:min(12, len(req.Fingerprint))]))
		defer span.End()
	}
	resp, err := w.Measure(ctx, req)
	if err != nil {
		w.errors.Add(1)
		code := http.StatusInternalServerError
		if ctx.Err() != nil {
			// The client went away (or the server is draining); the
			// measurement was cancelled, not broken.
			code = http.StatusServiceUnavailable
		}
		writeWireError(rw, code, err)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(rw).Encode(resp)
}

// writeWireError emits the fabric's JSON error document.
func writeWireError(rw http.ResponseWriter, code int, err error) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	_ = json.NewEncoder(rw).Encode(map[string]string{"error": err.Error()})
}

// Heartbeat announces a worker to its coordinator every period until
// ctx is cancelled: one registration immediately, then one per tick.
// Registration failures are retried on the next tick — a coordinator
// restart costs at most one period of invisibility, and the TTL (3×
// the period by default) tolerates transiently dropped beats without
// re-homing the worker's shard.
func Heartbeat(ctx context.Context, client *http.Client, coordinatorURL string, reg Registration, period time.Duration) {
	if client == nil {
		client = http.DefaultClient
	}
	if period <= 0 {
		period = DefaultHeartbeat
	}
	if reg.TTLSeconds == 0 {
		reg.TTLSeconds = (3 * period).Seconds()
	}
	beat := func() {
		body, err := json.Marshal(reg)
		if err != nil {
			return
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			coordinatorURL+"/v1/workers", bytes.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}
	beat()
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			beat()
		}
	}
}
