package fabric

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"liquidarch/internal/asm"
	"liquidarch/internal/config"
	"liquidarch/internal/measure"
	"liquidarch/internal/platform"
)

// stubProvider answers measurements with a canned report, optionally
// gating so tests can observe in-flight concurrency.
type stubProvider struct {
	gate    chan struct{} // when non-nil, Measure blocks on it
	calls   atomic.Int64
	active  atomic.Int64
	maxSeen atomic.Int64

	mu    sync.Mutex
	progs map[*asm.Program]int // distinct pointers seen, with call counts
}

func (p *stubProvider) Measure(ctx context.Context, prog *asm.Program, cfg config.Config, opts platform.Options) (*platform.RunReport, error) {
	p.calls.Add(1)
	n := p.active.Add(1)
	for {
		max := p.maxSeen.Load()
		if n <= max || p.maxSeen.CompareAndSwap(max, n) {
			break
		}
	}
	defer p.active.Add(-1)
	p.mu.Lock()
	if p.progs == nil {
		p.progs = make(map[*asm.Program]int)
	}
	p.progs[prog]++
	p.mu.Unlock()
	if p.gate != nil {
		select {
		case <-p.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return &platform.RunReport{Config: cfg, Checksum: 0xfab, Console: "ok"}, nil
}

func (p *stubProvider) distinctProgs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.progs)
}

// testProgram builds a small distinct program image per seed.
func testProgram(seed uint32) *asm.Program {
	return &asm.Program{
		TextBase: 0x1000,
		Text:     []uint32{0x2402000a + seed, 0x03e00008, 0x00000000},
		DataBase: 0x4000,
		Data:     []byte{1, 2, 3, byte(seed)},
		Entry:    0x1000,
	}
}

// request builds a valid wire request for a program.
func request(prog *asm.Program) MeasureRequest {
	return MeasureRequest{
		Fingerprint: measure.Fingerprint(prog),
		Prog:        ImageOf(prog),
		Config:      config.Default(),
	}
}

// TestWireRoundTrip: program images and reports survive the wire, and a
// tampered fingerprint is rejected.
func TestWireRoundTrip(t *testing.T) {
	t.Parallel()
	prog := testProgram(1)
	req := request(prog)
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back MeasureRequest
	if err := json.Unmarshal(body, &back); err != nil {
		t.Fatal(err)
	}
	got, err := verifyFingerprint(back)
	if err != nil {
		t.Fatalf("round-tripped image failed verification: %v", err)
	}
	if measure.Fingerprint(got) != req.Fingerprint {
		t.Fatal("reconstructed program has a different fingerprint")
	}

	back.Prog.Entry++ // tamper
	if _, err := verifyFingerprint(back); err == nil {
		t.Fatal("tampered image passed fingerprint verification")
	}

	rep := &platform.RunReport{Config: config.Default(), Checksum: 7, Console: "hi", Sampled: true}
	wire := WireReportOf(rep)
	wb, err := json.Marshal(MeasureResponse{Report: wire})
	if err != nil {
		t.Fatal(err)
	}
	var wresp MeasureResponse
	if err := json.Unmarshal(wb, &wresp); err != nil {
		t.Fatal(err)
	}
	out := wresp.Report.Report(rep.Config)
	if out.Checksum != 7 || out.Console != "hi" || !out.Sampled {
		t.Fatalf("report did not survive the wire: %+v", out)
	}
}

// TestRegistryLifecycle: TTL expiry drops silent workers, MarkDown
// sidelines until the next heartbeat re-admits.
func TestRegistryLifecycle(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	if err := r.Register(Registration{ID: "w1", URL: "http://a", TTLSeconds: 0.05}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Registration{}); err == nil {
		t.Fatal("empty registration accepted")
	}
	if got := r.LiveCount(); got != 1 {
		t.Fatalf("live = %d, want 1", got)
	}

	r.MarkDown("w1")
	if got := r.LiveCount(); got != 0 {
		t.Fatalf("live after MarkDown = %d, want 0", got)
	}
	if err := r.Register(Registration{ID: "w1", URL: "http://a", TTLSeconds: 0.05}); err != nil {
		t.Fatal(err)
	}
	if got := r.LiveCount(); got != 1 {
		t.Fatalf("heartbeat did not clear the down mark: live = %d", got)
	}

	time.Sleep(80 * time.Millisecond)
	if got := r.LiveCount(); got != 0 {
		t.Fatalf("live after TTL = %d, want 0", got)
	}
	regs, expired, down := r.counters()
	if regs != 2 || expired != 1 || down != 1 {
		t.Fatalf("counters = (%d, %d, %d), want (2, 1, 1)", regs, expired, down)
	}
}

// TestRendezvousStability: removing one worker remaps only the keys it
// owned; every other key keeps its worker.
func TestRendezvousStability(t *testing.T) {
	t.Parallel()
	workers := []*workerRecord{{id: "w1"}, {id: "w2"}, {id: "w3"}}
	keys := make([]string, 100)
	owner := make(map[string]string)
	for i := range keys {
		keys[i] = strings.Repeat("k", 1+i%7) + string(rune('a'+i%26))
		owner[keys[i]] = pick(keys[i], workers).id
	}
	counts := map[string]int{}
	for _, k := range keys {
		counts[owner[k]]++
	}
	for _, w := range workers {
		if counts[w.id] == 0 {
			t.Fatalf("worker %s owns no keys: %v", w.id, counts)
		}
	}
	remaining := workers[:2] // drop w3
	for _, k := range keys {
		got := pick(k, remaining).id
		if owner[k] != "w3" && got != owner[k] {
			t.Fatalf("key %q moved from %s to %s though its worker stayed", k, owner[k], got)
		}
	}
	if pick("anything", nil) != nil {
		t.Fatal("pick over empty set should return nil")
	}
}

// TestWorkerBoundsConcurrencyAndMemoizesPrograms: the semaphore caps
// in-flight measurements, and every RPC for one image resolves to one
// *asm.Program.
func TestWorkerBoundsConcurrencyAndMemoizesPrograms(t *testing.T) {
	t.Parallel()
	inner := &stubProvider{gate: make(chan struct{})}
	w := NewWorker(inner, 2)
	prog := testProgram(2)
	req := request(prog)

	const rpcs = 5
	var wg sync.WaitGroup
	errs := make(chan error, rpcs)
	for i := 0; i < rpcs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := w.Measure(context.Background(), req)
			errs <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for inner.active.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("worker never reached its concurrency bound")
		}
		time.Sleep(time.Millisecond)
	}
	close(inner.gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if max := inner.maxSeen.Load(); max > 2 {
		t.Fatalf("observed %d concurrent measurements, bound is 2", max)
	}
	if got := inner.distinctProgs(); got != 1 {
		t.Fatalf("provider saw %d program pointers for one image, want 1", got)
	}
	st := w.Stats()
	if st.Served != rpcs || st.Programs != 1 {
		t.Fatalf("stats = %+v, want served %d / programs 1", st, rpcs)
	}

	bad := req
	bad.Fingerprint = strings.Repeat("0", 64)
	if _, err := w.Measure(context.Background(), bad); err == nil {
		t.Fatal("bad fingerprint accepted")
	}
}

// TestRemoteDispatchSpillAndFallback: a live worker answers, the result
// spills to the shared store, and a dead worker degrades — counted — to
// the local provider.
func TestRemoteDispatchSpillAndFallback(t *testing.T) {
	t.Parallel()
	workerProv := &stubProvider{}
	worker := NewWorker(workerProv, 1)
	mux := http.NewServeMux()
	mux.Handle("POST /v1/measure", worker)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	dir := t.TempDir()
	store, err := measure.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	local := &stubProvider{}
	reg := NewRegistry()
	remote := NewRemote(reg, local, RemoteOptions{
		Timeout: 5 * time.Second,
		Retries: 1,
		Backoff: time.Millisecond,
		Store:   store,
	})

	prog := testProgram(3)
	cfg := config.Default()

	// No worker has ever registered: plain local behaviour, no fallback
	// counted.
	if _, err := remote.Measure(context.Background(), prog, cfg, platform.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := remote.Stats(); st.Fallbacks != 0 || st.Dispatched != 0 {
		t.Fatalf("unregistered fleet counted activity: %+v", st)
	}
	if local.calls.Load() != 1 {
		t.Fatalf("local provider calls = %d, want 1", local.calls.Load())
	}

	if err := reg.Register(Registration{ID: "w1", URL: srv.URL}); err != nil {
		t.Fatal(err)
	}
	rep, err := remote.Measure(context.Background(), prog, cfg, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checksum != 0xfab {
		t.Fatalf("remote report checksum = %#x, want 0xfab", rep.Checksum)
	}
	st := remote.Stats()
	if st.Dispatched != 1 || st.RemoteHits != 1 || st.Spills != 1 {
		t.Fatalf("after remote hit: %+v", st)
	}
	if workerProv.calls.Load() != 1 || local.calls.Load() != 1 {
		t.Fatalf("provider calls = worker %d local %d, want 1/1", workerProv.calls.Load(), local.calls.Load())
	}
	if _, ok := store.Load(measure.KeyFor(prog, cfg, platform.Options{})); !ok {
		t.Fatal("remote result did not spill to the shared store")
	}

	// Kill the worker: retries burn, the worker is sidelined, the job
	// completes locally with the fallback counted.
	srv.Close()
	if _, err := remote.Measure(context.Background(), prog, cfg, platform.Options{}); err != nil {
		t.Fatal(err)
	}
	st = remote.Stats()
	if st.Fallbacks != 1 || st.Retries != 1 || st.MarkedDown != 1 {
		t.Fatalf("after dead worker: %+v", st)
	}
	if local.calls.Load() != 2 {
		t.Fatalf("fallback did not use local provider: calls = %d", local.calls.Load())
	}
	if reg.LiveCount() != 0 {
		t.Fatal("dead worker still live after MarkDown")
	}
}

// TestHeartbeatRegistersAndRefreshes: the heartbeat loop announces
// immediately and keeps the registration alive past its TTL.
func TestHeartbeatRegistersAndRefreshes(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		var body Registration
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := reg.Register(body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		Heartbeat(ctx, srv.Client(), srv.URL,
			Registration{ID: "w1", URL: "http://worker"}, 20*time.Millisecond)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for reg.LiveCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never registered")
		}
		time.Sleep(time.Millisecond)
	}
	// Live across several TTL windows (TTL defaults to 3× period).
	time.Sleep(150 * time.Millisecond)
	if reg.LiveCount() != 1 {
		t.Fatal("heartbeat failed to keep the registration alive")
	}
	cancel()
	<-done
	time.Sleep(100 * time.Millisecond)
	if reg.LiveCount() != 0 {
		t.Fatal("stopped worker still registered past its TTL")
	}
}
