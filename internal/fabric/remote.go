package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"liquidarch/internal/asm"
	"liquidarch/internal/config"
	"liquidarch/internal/measure"
	"liquidarch/internal/obs"
	"liquidarch/internal/platform"
)

// RemoteStats is the coordinator-side half of the fabric metrics.
type RemoteStats struct {
	// Dispatched counts measurements sent to a worker (first attempts;
	// Retries counts the extra attempts on top).
	Dispatched uint64 `json:"dispatched"`
	// RemoteHits counts measurements a worker answered.
	RemoteHits uint64 `json:"remote_hits"`
	// Retries counts re-sent RPCs after a failed attempt.
	Retries uint64 `json:"retries"`
	// Fallbacks counts measurements executed through the local
	// fallback provider — because no worker was live, or because the
	// elected worker exhausted its retry budget. A healthy fleet keeps
	// this at zero; it growing is the fabric degrading (loudly) to the
	// single-host behaviour.
	Fallbacks uint64 `json:"fallbacks"`
	// Spills counts remote reports also written to the shared store.
	Spills uint64 `json:"spills"`
	// Workers counts currently registered workers, LiveWorkers the
	// dispatchable subset.
	Workers     int `json:"workers"`
	LiveWorkers int `json:"live_workers"`
	// Registrations/Expired/MarkedDown are the registry's lifetime
	// heartbeats accepted, TTL expiries, and dispatch-failure
	// sidelinings.
	Registrations uint64 `json:"registrations"`
	Expired       uint64 `json:"expired"`
	MarkedDown    uint64 `json:"marked_down"`
}

// RemoteOptions configures a Remote.
type RemoteOptions struct {
	// Timeout bounds each RPC attempt (default 5m — a full-scale
	// simulation is minutes, not seconds).
	Timeout time.Duration
	// Retries is how many extra attempts follow a failed RPC before
	// the measurement falls back locally (default 2).
	Retries int
	// Backoff is the wait before each retry, growing linearly with the
	// attempt number (default 250ms).
	Backoff time.Duration
	// Store, when set, receives every remote report (best effort), so
	// the fleet's results also land in the coordinator's shared store
	// and the fabric degrades to plain -cache-dir sharing.
	Store *measure.Store
	// Client is the HTTP client for worker RPCs (nil = a dedicated
	// client with sane connection reuse).
	Client *http.Client
}

// DefaultRPCTimeout bounds one measurement RPC attempt.
const DefaultRPCTimeout = 5 * time.Minute

// Remote is the coordinator's measure.Provider: it shards measurements
// across the registry's live workers by rendezvous-hashing their
// measure.ConfigHash, retries transient failures with backoff, and
// falls back to the wrapped local provider — transparently but
// counted, never silently — when the fleet cannot answer.
//
// Remote sits below the coordinator's bounded cache (the cache answers
// warm keys without an RPC) and above its local simulation stack (the
// fallback), so with zero workers registered the provider chain
// behaves exactly as before the fabric existed.
type Remote struct {
	registry *Registry
	fallback measure.Provider
	opts     RemoteOptions
	client   *http.Client

	dispatched atomic.Uint64
	remoteHits atomic.Uint64
	retries    atomic.Uint64
	fallbacks  atomic.Uint64
	spills     atomic.Uint64
}

// NewRemote builds a remote provider over a registry and a local
// fallback provider.
func NewRemote(registry *Registry, fallback measure.Provider, opts RemoteOptions) *Remote {
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultRPCTimeout
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 250 * time.Millisecond
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	}
	return &Remote{registry: registry, fallback: fallback, opts: opts, client: client}
}

// Registry returns the worker table, for the coordinator's
// registration endpoints.
func (r *Remote) Registry() *Registry { return r.registry }

// Stats snapshots the dispatch counters and the registry state.
func (r *Remote) Stats() RemoteStats {
	// Snapshot first: it sweeps TTL-expired workers, so the lifetime
	// counters read afterwards agree with the table this snapshot shows.
	all := r.registry.Snapshot()
	regs, expired, down := r.registry.counters()
	live := 0
	for _, w := range all {
		if w.Live {
			live++
		}
	}
	return RemoteStats{
		Dispatched:    r.dispatched.Load(),
		RemoteHits:    r.remoteHits.Load(),
		Retries:       r.retries.Load(),
		Fallbacks:     r.fallbacks.Load(),
		Spills:        r.spills.Load(),
		Workers:       len(all),
		LiveWorkers:   live,
		Registrations: regs,
		Expired:       expired,
		MarkedDown:    down,
	}
}

// Measure implements measure.Provider. Traced runs exist for their
// local side effects and never leave the host.
func (r *Remote) Measure(ctx context.Context, prog *asm.Program, cfg config.Config, opts platform.Options) (*platform.RunReport, error) {
	if opts.TraceWriter != nil {
		return r.fallback.Measure(ctx, prog, cfg, opts)
	}
	shard := measure.ConfigHash(cfg)
	worker := pick(shard, r.registry.live(time.Now()))
	if worker == nil {
		// No live workers: local execution, counted as a fallback only
		// when a fleet was ever configured — a coordinator nobody has
		// registered with is just a plain single-host daemon.
		if regs, _, _ := r.registry.counters(); regs > 0 {
			r.fallbacks.Add(1)
		}
		return r.fallback.Measure(ctx, prog, cfg, opts)
	}

	rctx, span := obs.Start(ctx, "fabric.rpc")
	if span != nil {
		ctx = rctx
		span.Set(obs.String("worker", worker.id), obs.String("config", shard))
		defer span.End()
	}
	r.dispatched.Add(1)
	rep, err := r.dispatch(ctx, worker, prog, cfg, opts, span)
	if err == nil {
		r.remoteHits.Add(1)
		if r.opts.Store != nil {
			// Best effort, like every spill: the shared store is a cache
			// tier, not the source of truth.
			if serr := r.opts.Store.Save(measure.KeyFor(prog, cfg, opts), rep); serr == nil {
				r.spills.Add(1)
			}
		}
		return rep, nil
	}
	if ctx.Err() != nil {
		// The caller is gone — don't burn a local simulation on it.
		return nil, ctx.Err()
	}
	// The elected worker exhausted its retry budget: sideline it until
	// its next heartbeat and answer locally. The result still lands in
	// the shared store through the fallback's own persistent layer (or
	// the spill above on the next remote success).
	r.registry.MarkDown(worker.id)
	r.fallbacks.Add(1)
	if span != nil {
		span.Set(obs.String("outcome", "fallback"))
	}
	return r.fallback.Measure(ctx, prog, cfg, opts)
}

// dispatch performs the bounded retry loop against one worker.
func (r *Remote) dispatch(ctx context.Context, worker *workerRecord, prog *asm.Program, cfg config.Config, opts platform.Options, span *obs.Span) (*platform.RunReport, error) {
	opts = opts.Normalized()
	req := MeasureRequest{
		Fingerprint:          measure.Fingerprint(prog),
		Prog:                 ImageOf(prog),
		Config:               cfg,
		RAMBytes:             opts.RAMBytes,
		MaxInstructions:      opts.MaxInstructions,
		SampleInstructions:   opts.SampleInstructions,
		IntervalInstructions: opts.IntervalInstructions,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("fabric: encoding measure request: %w", err)
	}

	var lastErr error
	for attempt := 0; attempt <= r.opts.Retries; attempt++ {
		if attempt > 0 {
			r.retries.Add(1)
			select {
			case <-time.After(time.Duration(attempt) * r.opts.Backoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		rep, err := r.rpc(ctx, worker.url, body, cfg)
		if err == nil {
			if span != nil {
				span.Set(obs.String("outcome", "remote"), obs.Int("attempts", int64(attempt+1)))
			}
			return rep, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
	}
	return nil, fmt.Errorf("fabric: worker %s: %w", worker.id, lastErr)
}

// rpc performs one POST /v1/measure attempt under the per-RPC timeout.
func (r *Remote) rpc(ctx context.Context, baseURL string, body []byte, cfg config.Config) (*platform.RunReport, error) {
	attemptCtx, cancel := context.WithTimeout(ctx, r.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(attemptCtx, http.MethodPost,
		baseURL+"/v1/measure", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("fabric: building measure request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fabric: measure rpc: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("fabric: measure rpc: status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var out MeasureResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("fabric: decoding measure response: %w", err)
	}
	return out.Report.Report(cfg), nil
}
