package fabric

import (
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// DefaultWorkerTTL is how long a registration stays live without a
// fresh heartbeat when the worker does not name its own TTL. Workers
// heartbeat every DefaultHeartbeat, so a worker must miss several
// beats before its shard is re-homed.
const DefaultWorkerTTL = 15 * time.Second

// DefaultHeartbeat is the worker-side re-registration period.
const DefaultHeartbeat = 5 * time.Second

// workerRecord is one registered worker.
type workerRecord struct {
	id       string
	url      string
	ttl      time.Duration
	lastSeen time.Time
	// down marks a worker the Remote declared unreachable after its
	// retry budget. A down worker is excluded from sharding until its
	// next heartbeat proves it back — faster than waiting out the TTL,
	// and self-healing either way.
	down bool
}

// WorkerInfo is the externally visible state of one registered worker
// (the GET /v1/workers and /v1/metrics document).
type WorkerInfo struct {
	ID   string `json:"id"`
	URL  string `json:"url"`
	Live bool   `json:"live"`
	// AgeSeconds is how long ago the last heartbeat arrived.
	AgeSeconds float64 `json:"age_seconds"`
}

// Registry is the coordinator's worker table: heartbeat-refreshed
// registrations with TTL-based expiry. Safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	workers map[string]*workerRecord

	registrations uint64 // heartbeats accepted (first-time and refresh)
	expired       uint64 // workers dropped by TTL expiry
	markedDown    uint64 // workers sidelined by dispatch failure
}

// NewRegistry builds an empty worker table.
func NewRegistry() *Registry {
	return &Registry{workers: make(map[string]*workerRecord)}
}

// Register records a heartbeat: a new worker joins the table, a known
// one refreshes its lease (and clears any down mark — the heartbeat is
// the proof of life that re-admits it to sharding).
func (r *Registry) Register(reg Registration) error {
	if err := reg.Validate(); err != nil {
		return err
	}
	ttl := time.Duration(reg.TTLSeconds * float64(time.Second))
	if ttl <= 0 {
		ttl = DefaultWorkerTTL
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.registrations++
	r.workers[reg.ID] = &workerRecord{
		id:       reg.ID,
		url:      reg.URL,
		ttl:      ttl,
		lastSeen: time.Now(),
	}
	return nil
}

// MarkDown sidelines a worker the caller found unreachable. The mark
// holds until the worker's next heartbeat; an id no longer registered
// is ignored.
func (r *Registry) MarkDown(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[id]; ok && !w.down {
		w.down = true
		r.markedDown++
	}
}

// sweepLocked drops TTL-expired workers. Caller holds r.mu.
func (r *Registry) sweepLocked(now time.Time) {
	for id, w := range r.workers {
		if now.Sub(w.lastSeen) > w.ttl {
			delete(r.workers, id)
			r.expired++
		}
	}
}

// live returns the dispatchable workers (registered, unexpired, not
// marked down), expiring stale registrations on the way.
func (r *Registry) live(now time.Time) []*workerRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked(now)
	out := make([]*workerRecord, 0, len(r.workers))
	for _, w := range r.workers {
		if !w.down {
			out = append(out, w)
		}
	}
	return out
}

// LiveCount reports how many workers are currently dispatchable.
func (r *Registry) LiveCount() int { return len(r.live(time.Now())) }

// Snapshot lists every registered worker, stable by ID.
func (r *Registry) Snapshot() []WorkerInfo {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked(now)
	out := make([]WorkerInfo, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, WorkerInfo{
			ID:         w.id,
			URL:        w.url,
			Live:       !w.down,
			AgeSeconds: now.Sub(w.lastSeen).Seconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// counters returns the registry's lifetime counters.
func (r *Registry) counters() (registrations, expired, markedDown uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.registrations, r.expired, r.markedDown
}

// pick elects the worker for a shard key by rendezvous (highest random
// weight) hashing over the live set: every coordinator ranks (key,
// worker) pairs identically, a worker joining or leaving only remaps
// the keys it wins or held, and no ring state needs maintaining. The
// shard key is measure.ConfigHash, so one configuration's measurements
// always land on the worker whose cache and store are warm for it.
func pick(key string, workers []*workerRecord) *workerRecord {
	var best *workerRecord
	var bestScore uint64
	for _, w := range workers {
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{0})
		h.Write([]byte(w.id))
		if score := h.Sum64(); best == nil || score > bestScore ||
			(score == bestScore && w.id < best.id) {
			best, bestScore = w, score
		}
	}
	return best
}
