// Command liquidctl is the reproduction of the Liquid Architecture
// platform's control interface: run an application on a chosen processor
// configuration and print its cycle-accurate profile — what the paper's
// web interface and hardware statistics module provided.
//
// Usage:
//
//	liquidctl -app blastn [-scale small] [-set dcachsetsz=32 -set multiplier=m32x32 ...] [-profile] [-caches]
//	liquidctl -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"liquidarch/internal/config"
	"liquidarch/internal/fpga"
	"liquidarch/internal/platform"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

type setFlags []string

func (s *setFlags) String() string { return strings.Join(*s, ",") }
func (s *setFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var (
		app     = flag.String("app", "", "benchmark to run (blastn, drr, frag, arith, mix)")
		scale   = flag.String("scale", "small", "workload scale: tiny, small, medium, paper")
		profile = flag.Bool("profile", false, "print the full stall-budget profile")
		caches  = flag.Bool("caches", false, "print cache event counters")
		list    = flag.Bool("list", false, "list available benchmarks")
		trace   = flag.Uint64("trace", 0, "disassemble the first N executed instructions")
		sets    setFlags
	)
	flag.Var(&sets, "set", "configuration change, e.g. dcachsetsz=32 (repeatable)")
	flag.Parse()

	if *list {
		for _, b := range progs.All() {
			fmt.Printf("%-8s %s\n", b.Name, b.Description)
		}
		return
	}

	b, ok := progs.ByName(*app)
	if !ok {
		fmt.Fprintf(os.Stderr, "liquidctl: unknown app %q (use -list)\n", *app)
		os.Exit(2)
	}
	sc, ok := workload.ParseScale(*scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "liquidctl: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	cfg := config.Default()
	for _, assignment := range sets {
		if err := cfg.Set(assignment); err != nil {
			fmt.Fprintf(os.Stderr, "liquidctl: %v\n", err)
			os.Exit(2)
		}
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "liquidctl: %v\n", err)
		os.Exit(2)
	}

	res, err := fpga.Synthesize(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "liquidctl: %v\n", err)
		os.Exit(1)
	}
	if !res.FitsDevice() {
		fmt.Fprintf(os.Stderr, "liquidctl: configuration does not fit the XCV2000E: %v\n", res)
		os.Exit(1)
	}

	prog, err := b.Assemble(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "liquidctl: %v\n", err)
		os.Exit(1)
	}
	var runOpts platform.Options
	if *trace > 0 {
		runOpts.TraceWriter = os.Stdout
		runOpts.TraceLimit = *trace
	}
	start := time.Now()
	rep, err := platform.RunWith(prog, cfg, runOpts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "liquidctl: %v\n", err)
		os.Exit(1)
	}
	wall := time.Since(start)

	if diff := cfg.DiffBase(); len(diff) > 0 {
		fmt.Printf("configuration: %s\n", strings.Join(diff, " "))
	} else {
		fmt.Println("configuration: base (out-of-the-box)")
	}
	fmt.Printf("synthesis:     %v\n", res)
	fmt.Printf("app:           %s (%s scale)\n", b.Name, sc)
	fmt.Printf("cycles:        %d (%.6f s @ 25 MHz)\n", rep.Cycles(), rep.Seconds())
	fmt.Printf("instructions:  %d (CPI %.3f)\n", rep.Stats.Instructions, rep.Stats.CPI())
	fmt.Printf("exit code:     %d  checksum: %#x", rep.ExitCode, rep.Checksum)
	if want := b.Golden(sc); rep.Checksum == want {
		fmt.Printf("  (matches golden model)\n")
	} else {
		fmt.Printf("  (GOLDEN MISMATCH: want %#x)\n", want)
	}
	fmt.Printf("simulated at:  %.1f M instructions/s (%v wall)\n",
		float64(rep.Stats.Instructions)/1e6/wall.Seconds(), wall.Round(time.Millisecond))
	if *profile {
		fmt.Println("\nprofile:")
		fmt.Println(rep.Stats.String())
	}
	if *caches {
		fmt.Printf("\nicache: %+v\ndcache: %+v\n", rep.ICache, rep.DCache)
	}
	if rep.Console != "" {
		fmt.Printf("\nconsole:\n%s", rep.Console)
	}
}
