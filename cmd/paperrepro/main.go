// Command paperrepro regenerates the tables and figures of the paper's
// evaluation on the reproduction's substrate.
//
// Usage:
//
//	paperrepro [-scale tiny|small|medium|paper] [-workers N] -figure ID
//	paperrepro -all
//
// IDs: figure1 space figure2 figure3 figure4 figure5 figure6 figure7.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"liquidarch/internal/experiments"
	"liquidarch/internal/workload"
)

func main() {
	var (
		figure  = flag.String("figure", "", "experiment id to regenerate (figure1..figure7, space)")
		all     = flag.Bool("all", false, "regenerate every table")
		scale   = flag.String("scale", "small", "workload scale: tiny, small, medium, paper")
		workers = flag.Int("workers", 0, "parallel measurement runs (0 = NumCPU)")
	)
	flag.Parse()

	sc, ok := workload.ParseScale(*scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "paperrepro: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	runner := experiments.NewRunner(experiments.Options{Scale: sc, Workers: *workers})

	ids := []string{}
	switch {
	case *all:
		ids = experiments.IDs()
	case *figure != "":
		ids = append(ids, *figure)
	default:
		fmt.Fprintln(os.Stderr, "paperrepro: pass -figure ID or -all; IDs:", experiments.IDs())
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		table, err := runner.ByID(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperrepro: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(table)
		fmt.Printf("[%s regenerated in %v at scale %s]\n\n", id, time.Since(start).Round(time.Millisecond), sc)
	}
}
