// Command paperrepro regenerates the tables and figures of the paper's
// evaluation on the reproduction's substrate.
//
// Usage:
//
//	paperrepro [-scale tiny|small|medium|paper] [-workers N] -figure ID
//	paperrepro -all
//
// IDs: figure1 space figure2 figure3 figure4 figure5 figure6 figure7.
//
// -cpuprofile and -memprofile write pprof profiles of the figure harness,
// so simulation-engine performance work can profile the real measurement
// workload directly (DESIGN.md §8).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"liquidarch/internal/experiments"
	"liquidarch/internal/workload"
)

// main defers to run so profile-flushing defers execute before the
// process exits with run's status code. An interrupt cancels the run's
// context, so a long sweep aborts between measurements instead of dying
// mid-profile.
func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx))
}

func run(ctx context.Context) int {
	var (
		figure       = flag.String("figure", "", "experiment id to regenerate (figure1..figure7, space)")
		all          = flag.Bool("all", false, "regenerate every table")
		scale        = flag.String("scale", "small", "workload scale: tiny, small, medium, paper")
		workers      = flag.Int("workers", 0, "parallel measurement runs (0 = NumCPU)")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile at exit to this file")
		mutexprofile = flag.String("mutexprofile", "", "write a mutex-contention profile at exit to this file")
		blockprofile = flag.String("blockprofile", "", "write a goroutine-blocking profile at exit to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperrepro: cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "paperrepro: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paperrepro: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "paperrepro: memprofile: %v\n", err)
			}
		}()
	}

	// Mutex and block profiles cover the concurrency layers the CPU
	// profile cannot see — engine-pool contention and the segment fan-out
	// of parallel interval runs (DESIGN.md §17) show up here.
	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexprofile)
	}
	if *blockprofile != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockprofile)
	}

	sc, ok := workload.ParseScale(*scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "paperrepro: unknown scale %q\n", *scale)
		return 2
	}
	runner := experiments.NewRunner(experiments.Options{Scale: sc, Workers: *workers})

	ids := []string{}
	switch {
	case *all:
		ids = experiments.IDs()
	case *figure != "":
		ids = append(ids, *figure)
	default:
		fmt.Fprintln(os.Stderr, "paperrepro: pass -figure ID or -all; IDs:", experiments.IDs())
		return 2
	}

	for _, id := range ids {
		start := time.Now()
		table, err := runner.ByID(ctx, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperrepro: %s: %v\n", id, err)
			return 1
		}
		fmt.Println(table)
		fmt.Printf("[%s regenerated in %v at scale %s]\n\n", id, time.Since(start).Round(time.Millisecond), sc)
	}
	return 0
}

// writeProfile dumps the named runtime/pprof profile to path.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperrepro: %sprofile: %v\n", name, err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "paperrepro: %sprofile: %v\n", name, err)
	}
}
