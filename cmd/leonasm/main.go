// Command leonasm assembles SPARC V8 source for the simulated LEON2 and
// prints a listing, or disassembles the benchmark programs.
//
// Usage:
//
//	leonasm -in program.s [-listing]
//	leonasm -app blastn [-scale tiny]   # disassemble a benchmark
package main

import (
	"flag"
	"fmt"
	"os"

	"liquidarch/internal/asm"
	"liquidarch/internal/isa"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

func main() {
	var (
		in      = flag.String("in", "", "assembly source file")
		app     = flag.String("app", "", "disassemble a benchmark program instead")
		scale   = flag.String("scale", "tiny", "workload scale for -app")
		listing = flag.Bool("listing", true, "print the disassembly listing")
		symbols = flag.Bool("symbols", false, "print the symbol table")
	)
	flag.Parse()

	var src string
	switch {
	case *in != "":
		data, err := os.ReadFile(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "leonasm: %v\n", err)
			os.Exit(1)
		}
		src = string(data)
	case *app != "":
		b, ok := progs.ByName(*app)
		if !ok {
			fmt.Fprintf(os.Stderr, "leonasm: unknown app %q\n", *app)
			os.Exit(2)
		}
		sc, ok := workload.ParseScale(*scale)
		if !ok {
			fmt.Fprintf(os.Stderr, "leonasm: unknown scale %q\n", *scale)
			os.Exit(2)
		}
		var err error
		src, err = b.Source(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "leonasm: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "leonasm: pass -in FILE or -app NAME")
		os.Exit(2)
	}

	prog, err := asm.Assemble(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "leonasm: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("text: %d words at %#08x; data: %d bytes at %#08x; entry %#08x\n",
		prog.TextWords(), prog.TextBase, len(prog.Data), prog.DataBase, prog.Entry)
	if *listing {
		fmt.Print(isa.DisassembleRange(prog.Text, prog.TextBase))
	}
	if *symbols {
		for name, addr := range prog.Symbols {
			fmt.Printf("%#08x %s\n", addr, name)
		}
	}
}
