// Command autoarchd is the tuning service: the paper's automatic
// reconfiguration technique behind an HTTP/JSON API. Clients POST tuning
// jobs; a bounded worker scheduler runs them against one shared bounded
// measurement cache (optionally spilled to a persistent on-disk store),
// and results are the same core.TuneReport documents `autoarch -json`
// prints.
//
// Usage:
//
//	autoarchd [-addr :8723] [-jobs 2] [-cache-entries 4096]
//	          [-cache-dir DIR] [-engine-pool N] [-mem-pool N]
//
// Endpoints: POST/GET /v1/jobs, GET /v1/jobs/{id}, GET
// /v1/jobs/{id}/stream (ndjson), DELETE /v1/jobs/{id}, GET /v1/metrics,
// GET /v1/healthz.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"liquidarch/internal/measure"
	"liquidarch/internal/platform"
	"liquidarch/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8723", "listen address")
		jobs         = flag.Int("jobs", 2, "concurrently running tuning jobs")
		queueDepth   = flag.Int("queue", 256, "submitted-job backlog bound")
		cacheEntries = flag.Int("cache-entries", measure.DefaultCacheEntries, "bounded measurement-cache entry cap")
		cacheDir     = flag.String("cache-dir", "", "persist measurement reports to this directory (empty = in-memory only)")
		enginePool   = flag.Int("engine-pool", 0, "platform engine pool size (0 = default)")
		memPool      = flag.Int("mem-pool", 0, "platform loaded-memory pool size (0 = default)")
	)
	flag.Parse()

	platform.SetPoolLimits(*enginePool, *memPool)

	// The provider stack, leaf to root: simulator → optional persistent
	// spill → bounded LRU. The cache is shared by every job the daemon
	// ever runs.
	var provider measure.Provider = measure.Simulator{}
	if *cacheDir != "" {
		store, err := measure.NewStore(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "autoarchd: %v\n", err)
			os.Exit(1)
		}
		provider = measure.NewPersistent(provider, store)
		log.Printf("report store at %s (%d entries)", store.Dir(), store.Len())
	}
	cache := measure.NewCache(provider, *cacheEntries)

	server := serve.New(serve.Options{
		Workers:    *jobs,
		QueueDepth: *queueDepth,
		Provider:   cache,
	})
	defer server.Close()

	httpServer := &http.Server{Addr: *addr, Handler: server.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpServer.Shutdown(shutdownCtx)
	}()

	log.Printf("autoarchd listening on %s (%d job workers, cache cap %d)", *addr, *jobs, *cacheEntries)
	if err := httpServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "autoarchd: %v\n", err)
		os.Exit(1)
	}
}
