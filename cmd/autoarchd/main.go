// Command autoarchd is the tuning service: the paper's automatic
// reconfiguration technique behind an HTTP/JSON API. Clients POST tuning
// jobs; a bounded worker scheduler maps each onto a core.Request and
// runs it through one shared core.Session — one bounded measurement
// cache (optionally spilled to a persistent on-disk store) plus a
// shared model layer, so jobs differing only in objective weights reuse
// one model build outright. Results are the same core.Report documents
// `autoarch -json` prints. Jobs with "phases": true run phase-aware
// tuning instead and return the report's phases block (`autoarch
// -phases -json`); every running job streams per-measurement progress
// through its ndjson status.
//
// The daemon is deployable as a long-lived, multi-replica service:
// identical in-flight jobs coalesce onto one execution, terminal jobs
// are retained only up to -job-retain / -job-ttl, the on-disk store is
// garbage-collected to -store-max-bytes / -store-max-age, and several
// replicas may share one -cache-dir (writes are atomic, corrupt entries
// are read-repaired, a store-version manifest keeps mixed fleets from
// clobbering each other, and -store-lease dedupes concurrent
// simulations of one key across replicas with a TTL claim file). With
// -model-dir, completed model sets additionally spill to durable
// artifacts, so a restarted or sibling replica serves a previously
// modeled application without a single simulation or model rebuild;
// -auto-workers replaces the static parallelism defaults with a
// measured split of the host between concurrent runs and intra-run
// replay. See DESIGN.md §14-§15, §18.
//
// The daemon also scales out actively as a distributed measurement
// fabric (DESIGN.md §21). With -fabric it is a coordinator: workers
// announce themselves with heartbeat registrations, each measurement is
// dispatched to the live worker that consistent-hashing elects for its
// configuration (so one configuration's results always land on the
// same worker's store), and an unreachable fleet degrades — counted,
// never silently — to local simulation. With -worker (or -coordinator)
// it serves measurement RPCs through its own cache/store stack under
// -measure-concurrency; -coordinator=URL additionally heartbeats its
// registration there every -heartbeat. POST /v1/batch submits an
// app × space × weighting matrix as one flight (one model build, N
// solves), and jobs carry a scheduling class: interactive jobs always
// run before bulk sweeps, each class admitted under its own queue
// depth (-queue / -bulk-queue).
//
// Usage:
//
//	autoarchd [-addr :8723] [-jobs 2] [-queue 256] [-bulk-queue 256]
//	          [-cache-entries 4096] [-model-cache 128] [-cache-dir DIR]
//	          [-model-dir DIR] [-job-retain 1024] [-job-ttl 0]
//	          [-store-max-bytes 0] [-store-max-age 0] [-store-gc-every 64]
//	          [-store-lease 0] [-engine-pool N] [-mem-pool N]
//	          [-auto-workers] [-pprof] [-slow-job 1m]
//	autoarchd -fabric [-fabric-timeout 5m] [-fabric-retries 2] ...
//	autoarchd -worker -coordinator http://head:8723 [-advertise URL]
//	          [-worker-id ID] [-heartbeat 5s] [-measure-concurrency N] ...
//
// Endpoints: POST/GET /v1/jobs, POST /v1/batch, GET /v1/jobs/{id}, GET
// /v1/jobs/{id}/stream (ndjson), DELETE /v1/jobs/{id}, GET
// /v1/trace/{id}, GET /v1/trace/{id}/stream (ndjson), GET /v1/metrics,
// GET /v1/healthz; plus POST/GET /v1/workers on a coordinator and
// POST /v1/measure on a worker.
//
// Every job is traced: GET /v1/trace/{id} returns its pipeline span
// tree (model source, per-measurement cache outcomes, solver effort),
// /v1/metrics carries per-stage latency histograms, jobs slower than
// -slow-job log a warning naming their slowest stages, and -pprof
// exposes net/http/pprof under /debug/pprof/ on the same listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"liquidarch/internal/core"
	"liquidarch/internal/fabric"
	"liquidarch/internal/measure"
	"liquidarch/internal/platform"
	"liquidarch/internal/serve"
)

func main() {
	var (
		addr          = flag.String("addr", ":8723", "listen address")
		jobs          = flag.Int("jobs", 2, "concurrently running tuning jobs")
		queueDepth    = flag.Int("queue", 256, "submitted-job backlog bound")
		cacheEntries  = flag.Int("cache-entries", measure.DefaultCacheEntries, "bounded measurement-cache entry cap")
		modelCache    = flag.Int("model-cache", core.DefaultModelCacheEntries, "shared model-layer entry cap (model builds reused across weightings)")
		cacheDir      = flag.String("cache-dir", "", "persist measurement reports to this directory (empty = in-memory only; shareable across replicas)")
		modelDir      = flag.String("model-dir", "", "spill built model sets to durable artifacts in this directory and load them on model-cache misses (empty = in-memory model layer only; shareable across replicas)")
		jobRetain     = flag.Int("job-retain", serve.DefaultRetainJobs, "terminal jobs kept in the job table (0 = default, -1 = unlimited, minimum cap 1)")
		jobTTL        = flag.Duration("job-ttl", 0, "drop terminal jobs older than this (0 = no age bound)")
		storeMaxBytes = flag.Int64("store-max-bytes", 0, "GC the -cache-dir store down to this many bytes (0 = unbounded)")
		storeMaxAge   = flag.Duration("store-max-age", 0, "GC -cache-dir entries not used within this window (0 = no age bound)")
		storeGCEvery  = flag.Int("store-gc-every", measure.DefaultGCEvery, "run a store GC sweep every N spills")
		storeLease    = flag.Duration("store-lease", 0, "cross-replica measurement claim TTL for the shared -cache-dir (0 = off)")
		enginePool    = flag.Int("engine-pool", 0, "platform engine pool size (0 = default)")
		memPool       = flag.Int("mem-pool", 0, "platform loaded-memory pool size (0 = default)")
		superblocks   = flag.Int("superblocks", 0, "superblock compilation threshold: taken-branch heat before a hot block is specialized (0 = default, negative = off); never changes results, only speed")
		intraRun      = flag.Int("intra-run-workers", 0, "workers for checkpointed parallel replay of repeated interval-profiled runs (0 or 1 = serial); never changes results, only speed")
		autoWorkers   = flag.Bool("auto-workers", false, "measure the host's effective parallelism once and split it between concurrent runs and intra-run replay for jobs that do not pin a worker count; never changes results, only speed")
		pprofOn       = flag.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/ on the service listener")
		slowJob       = flag.Duration("slow-job", time.Minute, "log a warning for jobs slower than this, with their slowest pipeline stages (0 = off)")

		bulkQueue     = flag.Int("bulk-queue", 0, "bulk-class job backlog bound (0 = same as -queue); interactive and bulk admissions are independent")
		fabricOn      = flag.Bool("fabric", false, "coordinator mode: shard measurements across heartbeat-registered remote workers (POST/GET /v1/workers), falling back to local simulation when the fleet cannot answer")
		fabricTimeout = flag.Duration("fabric-timeout", fabric.DefaultRPCTimeout, "per-attempt measurement RPC timeout")
		fabricRetries = flag.Int("fabric-retries", 2, "extra RPC attempts on the elected worker before falling back locally")
		workerMode    = flag.Bool("worker", false, "worker mode: serve measurement RPCs (POST /v1/measure) through this daemon's cache and store stack")
		coordinator   = flag.String("coordinator", "", "coordinator base URL to heartbeat this worker's registration to (implies -worker)")
		advertise     = flag.String("advertise", "", "base URL this worker advertises to the coordinator (default http://127.0.0.1<addr>)")
		workerID      = flag.String("worker-id", "", "stable worker identity — its shard assignment hashes against it, so a restarted worker reclaiming its ID reclaims its warm shard (default hostname<addr>)")
		heartbeat     = flag.Duration("heartbeat", fabric.DefaultHeartbeat, "worker re-registration period; the coordinator drops workers silent for 3x this")
		measureConc   = flag.Int("measure-concurrency", 0, "concurrently served measurement RPCs in worker mode (0 = NumCPU)")
	)
	flag.Parse()

	platform.SetPoolLimits(*enginePool, *memPool)

	// The provider stack, leaf to root: simulator → optional persistent
	// spill (GC'd to the configured bounds) → bounded LRU. The cache is
	// shared by every job the daemon ever runs.
	var provider measure.Provider = measure.Simulator{}
	var store *measure.Store
	if *cacheDir != "" {
		var err error
		store, err = measure.NewStore(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "autoarchd: %v\n", err)
			os.Exit(1)
		}
		persistent := measure.NewPersistent(provider, store)
		gc := measure.GCPolicy{MaxBytes: *storeMaxBytes, MaxAge: *storeMaxAge}
		if gc.Enabled() {
			persistent.EnableGC(gc, *storeGCEvery)
		}
		if *storeLease > 0 {
			persistent.EnableLease(*storeLease)
		}
		provider = persistent
		st := store.Stats()
		log.Printf("report store at %s (v%d, %d entries, %d bytes)", store.Dir(), measure.StoreVersion, st.Entries, st.Bytes)
	}
	// Coordinator mode: the remote provider slots between the bounded
	// cache (warm keys never leave the host) and the local stack (the
	// counted fallback when the fleet cannot answer). Remote results
	// spill to the shared store when one is configured, so the fabric
	// degrades to exactly the passive -cache-dir sharing it replaces.
	var remote *fabric.Remote
	if *fabricOn {
		remote = fabric.NewRemote(fabric.NewRegistry(), provider, fabric.RemoteOptions{
			Timeout: *fabricTimeout,
			Retries: *fabricRetries,
			Store:   store,
		})
		provider = remote
		log.Printf("fabric coordinator: sharding measurements across registered workers (rpc timeout %v, %d retries)", *fabricTimeout, *fabricRetries)
	}
	cache := measure.NewCache(provider, *cacheEntries)

	// Worker mode: measurement RPCs are served through the same cache
	// and store stack local jobs use, under a bounded semaphore.
	var worker *fabric.Worker
	if *workerMode || *coordinator != "" {
		worker = fabric.NewWorker(cache, *measureConc)
	}

	var modelStore *core.ModelStore
	if *modelDir != "" {
		var err error
		modelStore, err = core.NewModelStore(*modelDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "autoarchd: %v\n", err)
			os.Exit(1)
		}
		log.Printf("model artifacts at %s (v%d)", modelStore.Dir(), core.ModelSetVersion)
	}

	server := serve.New(serve.Options{
		Workers:             *jobs,
		QueueDepth:          *queueDepth,
		BulkQueueDepth:      *bulkQueue,
		Fabric:              remote,
		Worker:              worker,
		Provider:            cache,
		Store:               store,
		RetainJobs:          *jobRetain,
		JobTTL:              *jobTTL,
		ModelCacheEntries:   *modelCache,
		SuperblockThreshold: *superblocks,
		IntraRunWorkers:     *intraRun,
		ModelStore:          modelStore,
		AutoWorkers:         *autoWorkers,
		SlowJobThreshold:    *slowJob,
	})
	defer server.Close()

	handler := server.Handler()
	if *pprofOn {
		// The admin mux wraps the API: pprof's handlers are registered
		// explicitly (not via the package's DefaultServeMux side effect)
		// so profiling is strictly opt-in.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("pprof enabled at /debug/pprof/")
	}
	httpServer := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *coordinator != "" {
		id := *workerID
		if id == "" {
			host, _ := os.Hostname()
			id = host + *addr
		}
		adv := *advertise
		if adv == "" {
			if strings.HasPrefix(*addr, ":") {
				adv = "http://127.0.0.1" + *addr
			} else {
				adv = "http://" + *addr
			}
		}
		reg := fabric.Registration{ID: id, URL: adv, TTLSeconds: (3 * *heartbeat).Seconds()}
		go fabric.Heartbeat(ctx, nil, *coordinator, reg, *heartbeat)
		log.Printf("fabric worker %q heartbeating to %s every %v (advertising %s)", id, *coordinator, *heartbeat, adv)
	}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpServer.Shutdown(shutdownCtx)
	}()

	log.Printf("autoarchd listening on %s (%d job workers, cache cap %d)", *addr, *jobs, *cacheEntries)
	if err := httpServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "autoarchd: %v\n", err)
		os.Exit(1)
	}
}
