// Command autoarch is the paper's technique as a tool: automatic
// application-specific microarchitecture reconfiguration. It maps its
// flags 1:1 onto a core.Request, runs it through the unified tuning
// pipeline (core.Session.Tune) — build the one-change-at-a-time cost
// model, formulate and solve the Section 4 BINLP, validate with an
// actual build and run — and prints the resulting core.Report.
//
// Usage:
//
//	autoarch -app blastn [-w1 100 -w2 1] [-scale small] [-space full|dcache] [-model] [-json]
//	autoarch -app mix -phases [-interval N] [-switch-penalty N] [-phase-threshold T] [-json]
//	autoarch -app mix -replay [-online] ...
//	autoarch -app blastn [-model-dir DIR] [-auto-workers] ...
//	autoarch -app mix -trace ...
//	autoarch -app blastn -sweep-weights "100:1,1:100" [-json]
//	autoarch -app blastn -remote http://head:8723 [-class bulk] ...
//
// With -model-dir the built model set is spilled to a durable artifact
// and reused by later runs (and by an autoarchd sharing the directory);
// -auto-workers replaces the static parallelism defaults with a measured
// split of the host between concurrent runs and intra-run replay.
//
// With -json the result is the core.Report document — the same
// serialization the autoarchd daemon returns for a finished job — on
// stdout, with the human progress lines demoted to stderr.
//
// With -sweep-weights the listed weightings run as one batch through
// one session: the first builds the cost model, the rest reuse it and
// only solve, so an N-weighting sweep costs one model build. With
// -remote the work is submitted to a running autoarchd instead —
// POST /v1/jobs for a single tune, POST /v1/batch for a sweep — polled
// to completion (progress on stderr), and the daemon's result document
// is printed as JSON; -class bulk schedules the submission behind the
// daemon's interactive jobs.
//
// With -trace the run is traced through the obs layer and a
// human-readable stage breakdown — model build vs. solve vs.
// validation, with each stage's share of the total tune wall time and
// the measurement cache outcomes — is printed after the report (to
// stderr in -json mode).
//
// With -phases the tool runs phase-aware tuning instead: the base run is
// profiled in -interval instruction slices, phases are detected from the
// interval signatures, one configuration is recommended per phase, and
// the per-phase schedule (charged -switch-penalty cycles per
// configuration parameter changed at each mid-run reconfiguration) is
// weighed against the single whole-program recommendation. The report
// then carries the "phases" block the daemon's phase jobs return.
//
// With -replay the per-phase schedule is additionally executed for real
// — one simulation that reshapes the platform at every segment boundary
// — and the report gains the "replay" block with the actual per-segment
// cycles and the modeled-vs-replayed conformance error. -online further
// runs the closed-loop mode: the platform classifies each live
// interval's block signature against the detected phases and switches
// with no precomputed schedule, reporting how often it diverged from
// one. Both imply -phases and never touch cached measurements.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"liquidarch/internal/config"
	"liquidarch/internal/core"
	"liquidarch/internal/cpu"
	"liquidarch/internal/obs"
	"liquidarch/internal/platform"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so the CLI is testable
// end to end (including the -json golden file).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("autoarch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		app       = fs.String("app", "", "benchmark to tune (blastn, drr, frag, arith, mix)")
		w1        = fs.Float64("w1", 100, "runtime weight (paper: 100 for runtime optimization)")
		w2        = fs.Float64("w2", 1, "chip resource weight (paper: 1, or 100 for resource optimization)")
		scale     = fs.String("scale", "small", "workload scale: tiny, small, medium, paper")
		spaceName = fs.String("space", "full", "decision space: full (52 vars) or dcache (Section 5 sub-space)")
		showModel = fs.Bool("model", false, "print every measured perturbation")
		workers   = fs.Int("workers", 0, "parallel measurement runs (0 = NumCPU)")
		saveModel = fs.String("save-model", "", "write the measured model to a JSON file")
		loadModel = fs.String("load-model", "", "reuse a previously saved model instead of measuring")
		jsonOut   = fs.Bool("json", false, "emit the result as a core.Report JSON document on stdout")
		traceRun  = fs.Bool("trace", false, "trace the pipeline and print a per-stage breakdown of the tune wall time")
		sweep     = fs.String("sweep-weights", "", "comma-separated w1:w2[:w3] weightings swept as one batch — one model build, N solves (e.g. \"100:1,1:100\")")
		remoteURL = fs.String("remote", "", "submit to a running autoarchd at this base URL (POST /v1/jobs, or /v1/batch with -sweep-weights) instead of tuning locally")
		class     = fs.String("class", "", "scheduling class for -remote submissions: interactive (default) or bulk")

		superblocks = fs.Int("superblocks", 0, "superblock compilation threshold: taken-branch heat before a hot block is specialized (0 = default, negative = off); never changes results, only speed")
		intraRun    = fs.Int("intra-run-workers", 0, "workers for checkpointed parallel replay of repeated interval-profiled runs (0 or 1 = serial); never changes results, only speed")
		modelDir    = fs.String("model-dir", "", "spill built model sets to durable artifacts in this directory and reuse them on later runs (empty = build in memory every run)")
		autoWorkers = fs.Bool("auto-workers", false, "measure the host's effective parallelism once and split it between concurrent runs and intra-run replay (ignored when -workers is set); never changes results, only speed")

		phases    = fs.Bool("phases", false, "phase-aware tuning: one configuration per detected execution phase")
		interval  = fs.Uint64("interval", core.DefaultIntervalInstructions, "phase profiling interval length in instructions")
		switchPen = fs.Uint64("switch-penalty", core.DefaultSwitchPenaltyCycles, "cycle cost of a full mid-run reconfiguration; each switch is charged the share of it proportional to the parameters it changes")
		phaseThr  = fs.Float64("phase-threshold", 0, "phase-detection clustering threshold (0 = default)")
		replay    = fs.Bool("replay", false, "replay the per-phase schedule for real and report the modeled-vs-replayed error (implies -phases)")
		online    = fs.Bool("online", false, "additionally run the closed-loop mode: classify live intervals and switch with no precomputed schedule (implies -phases)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// In JSON mode stdout carries only the document; progress goes to
	// stderr so pipelines stay clean.
	progress := stdout
	if *jsonOut {
		progress = stderr
	}

	if *traceRun {
		tracer := obs.NewTracer(obs.TracerOptions{})
		ctx = obs.WithTracer(ctx, tracer)
		// Deferred so the breakdown prints after whichever path ran (and
		// still shows the spans completed so far when the tune failed).
		defer printTrace(tracer, progress)
	}

	if *superblocks != 0 || *intraRun != 0 {
		sb := *superblocks
		if sb == 0 {
			sb = cpu.DefaultSuperblockThreshold
		}
		platform.SetDefaultTuning(sb, *intraRun)
	}

	if _, ok := progs.ByName(*app); !ok {
		fmt.Fprintf(stderr, "autoarch: unknown app %q\n", *app)
		return 2
	}
	sc, ok := workload.ParseScale(*scale)
	if !ok {
		fmt.Fprintf(stderr, "autoarch: unknown scale %q\n", *scale)
		return 2
	}
	space, err := config.SpaceByName(*spaceName)
	if err != nil {
		fmt.Fprintf(stderr, "autoarch: unknown space %q\n", *spaceName)
		return 2
	}

	weightings, err := parseWeightSweep(*sweep)
	if err != nil {
		fmt.Fprintf(stderr, "autoarch: %v\n", err)
		return 2
	}
	if len(weightings) > 0 && (*phases || *replay || *online || *loadModel != "" || *saveModel != "") {
		fmt.Fprintln(stderr, "autoarch: -sweep-weights is incompatible with -phases, -replay, -online, -save-model and -load-model")
		return 2
	}
	if *remoteURL != "" {
		if *traceRun || *loadModel != "" || *saveModel != "" || *modelDir != "" {
			fmt.Fprintln(stderr, "autoarch: -remote is incompatible with -trace, -save-model, -load-model and -model-dir (those are local-run features)")
			return 2
		}
		if *replay || *online {
			*phases = true
		}
		return runRemote(ctx, *remoteURL, remoteJob{
			app: *app, scale: *scale, space: *spaceName, w1: *w1, w2: *w2,
			workers: *workers, includeModel: *showModel, class: *class,
			phases: *phases, interval: *interval, switchPen: *switchPen,
			phaseThr: *phaseThr, replay: *replay, online: *online,
		}, weightings, *jsonOut, stdout, stderr, progress)
	}

	// The flags map 1:1 onto the unified request; one Session.Tune call
	// is the whole tool.
	req := core.Request{
		App:          *app,
		Scale:        sc,
		Space:        space,
		Weights:      core.Weights{W1: *w1, W2: *w2},
		Workers:      *workers,
		IncludeModel: *showModel,
	}
	var modelStore *core.ModelStore
	if *modelDir != "" {
		modelStore, err = core.NewModelStore(*modelDir)
		if err != nil {
			fmt.Fprintf(stderr, "autoarch: %v\n", err)
			return 1
		}
	}
	sess := core.NewSession(core.SessionOptions{
		ModelStore:  modelStore,
		AutoWorkers: *autoWorkers,
	})

	if len(weightings) > 0 {
		return runSweep(ctx, sess, req, weightings, *jsonOut, stdout, stderr, progress)
	}

	if *replay || *online {
		*phases = true
	}
	if *phases {
		if *loadModel != "" || *saveModel != "" || *showModel {
			fmt.Fprintln(stderr, "autoarch: -phases is incompatible with -model, -save-model and -load-model (phase runs build one model per phase)")
			return 2
		}
		req.IncludeModel = false
		req.Phases = &core.PhaseOptions{
			IntervalInstructions: *interval,
			SwitchPenaltyCycles:  *switchPen,
			Threshold:            *phaseThr,
		}
		req.Replay = *replay
		req.Online = *online
		return runPhases(ctx, sess, req, *jsonOut, stdout, stderr, progress)
	}

	if *loadModel != "" {
		model, err := core.LoadModel(*loadModel)
		if err != nil {
			fmt.Fprintf(stderr, "autoarch: %v\n", err)
			return 1
		}
		req.Model = model
		fmt.Fprintf(progress, "loaded model for %s (%d variables, %s scale)\n",
			model.App, model.Space.Len(), model.Scale)
	} else {
		fmt.Fprintf(progress, "building cost model for %s (%d variables, %s scale)...\n", *app, space.Len(), sc)
	}

	start := time.Now()
	rep, err := sess.Tune(ctx, req)
	if err != nil {
		fmt.Fprintf(stderr, "autoarch: %v\n", err)
		return 1
	}
	model := rep.Artifacts.Model
	if *loadModel == "" {
		fmt.Fprintf(progress, "tuned in %v (model + solve + validation): base %d cycles (%.6f s), %v\n",
			time.Since(start).Round(time.Millisecond), model.BaseCycles,
			float64(model.BaseCycles)/25e6, model.BaseResources)
	}
	if *saveModel != "" {
		if err := core.SaveModel(model, *saveModel); err != nil {
			fmt.Fprintf(stderr, "autoarch: %v\n", err)
			return 1
		}
		fmt.Fprintf(progress, "model saved to %s\n", *saveModel)
	}

	if *jsonOut {
		return writeJSON(rep, stdout, stderr)
	}

	if *showModel {
		fmt.Fprintf(stdout, "\n%-22s %12s %9s %6s %6s\n", "variable", "cycles", "rho%", "lam", "beta")
		for _, e := range model.Entries {
			fmt.Fprintf(stdout, "%-22s %12d %+9.3f %+6d %+6d\n", e.Var.Name, e.Cycles, e.Rho, e.Lambda, e.Beta)
		}
		fmt.Fprintln(stdout)
	}

	rec := rep.Artifacts.Recommendation
	fmt.Fprintf(stdout, "\nsolved BINLP (w1=%g, w2=%g): %d nodes, proven=%t, objective %.3f\n",
		*w1, *w2, rec.SolverNodes, rec.Proven, rec.Objective)
	if len(rec.Changes) == 0 {
		fmt.Fprintln(stdout, "recommendation: keep the base configuration")
	} else {
		fmt.Fprintf(stdout, "recommendation: %s\n", strings.Join(rec.Changes, " "))
	}
	fmt.Fprintf(stdout, "predicted: runtime %.6f s (%+.2f%%), LUTs %d%% (nonlin %d%%), BRAM %d%% (lin %d%%)\n",
		rec.Predicted.RuntimeCycles/25e6, rec.Predicted.RuntimePct,
		rec.Predicted.LUTPctLinear, rec.Predicted.LUTPctNonlinear,
		rec.Predicted.BRAMPctNonlinear, rec.Predicted.BRAMPctLinear)
	val := rep.Artifacts.Validation
	fmt.Fprintf(stdout, "actual:    runtime %.6f s (%+.2f%%), %v\n",
		float64(val.Cycles)/25e6, val.RuntimePct, val.Resources)
	return 0
}

// printTrace finishes the -trace tracer and prints the stage breakdown:
// the "tune" root's wall time, each direct-child stage's aggregate
// duration and share (the "other" line is the root's own time, so the
// shares sum to 100%), and the measurement cache outcomes.
func printTrace(t *obs.Tracer, w io.Writer) {
	t.Finish()
	tr := t.Snapshot()
	root, lines, ok := tr.Breakdown()
	if !ok {
		fmt.Fprintln(w, "\ntrace: no spans recorded")
		return
	}
	fmt.Fprintf(w, "\ntrace: %s %v total, %d spans", root.Name,
		root.Duration().Round(time.Microsecond), len(tr.Spans))
	if tr.Dropped > 0 {
		fmt.Fprintf(w, " (%d dropped)", tr.Dropped)
	}
	fmt.Fprintln(w)
	for _, ln := range lines {
		fmt.Fprintf(w, "  %-14s %12v  x%-4d %5.1f%%\n",
			ln.Name, ln.Duration.Round(time.Microsecond), ln.Count, ln.Pct)
	}
	var hits, waits, misses int
	for _, rec := range tr.Spans {
		if rec.Name != "measure" {
			continue
		}
		if a, found := rec.Attr("outcome"); found {
			switch a.Str {
			case "hit":
				hits++
			case "wait":
				waits++
			case "miss":
				misses++
			}
		}
	}
	if n := hits + waits + misses; n > 0 {
		fmt.Fprintf(w, "  measurements: %d total (%d simulated, %d cache hits, %d joined in-flight)\n",
			n, misses, hits, waits)
	}
}

// writeJSON emits the report document on stdout.
func writeJSON(rep *core.Report, stdout, stderr io.Writer) int {
	data, err := rep.MarshalIndent()
	if err != nil {
		fmt.Fprintf(stderr, "autoarch: %v\n", err)
		return 1
	}
	if _, err := stdout.Write(data); err != nil {
		fmt.Fprintf(stderr, "autoarch: %v\n", err)
		return 1
	}
	return 0
}

// runPhases executes the -phases mode: interval profiling, phase
// detection, per-phase solves and the reconfiguration decision.
func runPhases(ctx context.Context, sess *core.Session, req core.Request, jsonOut bool, stdout, stderr, progress io.Writer) int {
	fmt.Fprintf(progress, "phase-aware tuning of %s (%d variables, %s scale, interval %d instructions)...\n",
		req.App, req.Space.Len(), req.Scale, req.Phases.IntervalInstructions)
	start := time.Now()
	rep, err := sess.Tune(ctx, req)
	if err != nil {
		fmt.Fprintf(stderr, "autoarch: %v\n", err)
		return 1
	}
	ph := rep.Phases
	fmt.Fprintf(progress, "tuned in %v: %d intervals, %d phases, %d segments\n",
		time.Since(start).Round(time.Millisecond), len(ph.Trace.Assignments), ph.Trace.Phases, len(ph.Trace.Segments))

	if jsonOut {
		return writeJSON(rep, stdout, stderr)
	}

	fmt.Fprintf(stdout, "\nbase: %d cycles (%.6f s)\n", rep.Base.Cycles, rep.Base.Seconds)
	fmt.Fprintf(stdout, "\n%-6s %10s %13s %14s  %s\n", "phase", "intervals", "instructions", "base cycles", "recommended changes")
	for _, p := range ph.Recommendations {
		changes := strings.Join(p.Recommendation.Changes, " ")
		if changes == "" {
			changes = "(keep base)"
		}
		fmt.Fprintf(stdout, "%-6d %10d %13d %14d  %s\n", p.Phase, p.Intervals, p.Instructions, p.BaseCycles, changes)
	}
	wholeChanges := strings.Join(rep.Recommendation.Changes, " ")
	if wholeChanges == "" {
		wholeChanges = "(keep base)"
	}
	fmt.Fprintf(stdout, "\nwhole-program recommendation: %s\n", wholeChanges)
	fmt.Fprintf(stdout, "schedule: %d segments, %d reconfigurations costing %d cycles total (full reshape = %d)\n",
		len(ph.Schedule), ph.Switches, ph.SwitchCostCycles, ph.SwitchPenaltyCycles)
	for _, seg := range ph.Schedule {
		if seg.Switch {
			fmt.Fprintf(stdout, "  switch before intervals %d-%d: %d parameters change (%d cycles)\n",
				seg.Start, seg.End, seg.ChangedVars, seg.SwitchCostCycles)
		}
	}
	fmt.Fprintf(stdout, "modeled cycles: per-phase %.0f (switch costs included) vs whole-program %.0f\n",
		ph.PerPhaseCycles, ph.WholeProgramCycles)
	if ph.PerPhaseWins {
		fmt.Fprintf(stdout, "verdict: per-phase reconfiguration wins by %.2f%%\n", ph.SavingsPct)
	} else {
		fmt.Fprintf(stdout, "verdict: single whole-program configuration wins by %.2f%%\n", -ph.SavingsPct)
	}
	if rep.Replay != nil {
		printReplay(stdout, "replay", rep.Replay)
	}
	if rep.Online != nil {
		printReplay(stdout, "online", &rep.Online.ReplayBlock)
		fmt.Fprintf(stdout, "  divergences from schedule: %d intervals, unclassified: %d\n",
			rep.Online.Divergences, rep.Online.Unclassified)
	}
	return 0
}

// printReplay renders one replayed (or online-adapted) run: the actual
// per-segment cycles and the conformance error against the modeled
// schedule cost.
func printReplay(stdout io.Writer, mode string, blk *core.ReplayBlock) {
	fmt.Fprintf(stdout, "\n%s: %d segments, %d switches costing %d cycles\n",
		mode, len(blk.Segments), blk.Switches, blk.SwitchCostCycles)
	for _, seg := range blk.Segments {
		marker := ""
		if seg.Switch {
			marker = fmt.Sprintf("  (switch: %d parameters, %d cycles)", seg.ChangedVars, seg.SwitchCostCycles)
		}
		fmt.Fprintf(stdout, "  segment %d phase %d intervals %d-%d: %d cycles%s\n",
			seg.Segment, seg.Phase, seg.Start, seg.End, seg.Cycles, marker)
	}
	fmt.Fprintf(stdout, "  actual %d cycles (simulated %d + switch %d) vs modeled %.0f: error %+.3f%%\n",
		blk.ActualCycles, blk.SimulatedCycles, blk.SwitchCostCycles, blk.ModeledCycles, blk.ErrorPct)
}
