// Command autoarch is the paper's technique as a tool: automatic
// application-specific microarchitecture reconfiguration. It builds the
// one-change-at-a-time cost model for an application, formulates and
// solves the Section 4 BINLP, prints the recommended configuration, and
// validates it with an actual build and run.
//
// Usage:
//
//	autoarch -app blastn [-w1 100 -w2 1] [-scale small] [-space full|dcache] [-model]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"liquidarch/internal/config"
	"liquidarch/internal/core"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

func main() {
	var (
		app       = flag.String("app", "", "benchmark to tune (blastn, drr, frag, arith)")
		w1        = flag.Float64("w1", 100, "runtime weight (paper: 100 for runtime optimization)")
		w2        = flag.Float64("w2", 1, "chip resource weight (paper: 1, or 100 for resource optimization)")
		scale     = flag.String("scale", "small", "workload scale: tiny, small, medium, paper")
		spaceName = flag.String("space", "full", "decision space: full (52 vars) or dcache (Section 5 sub-space)")
		showModel = flag.Bool("model", false, "print every measured perturbation")
		workers   = flag.Int("workers", 0, "parallel measurement runs (0 = NumCPU)")
		saveModel = flag.String("save-model", "", "write the measured model to a JSON file")
		loadModel = flag.String("load-model", "", "reuse a previously saved model instead of measuring")
	)
	flag.Parse()

	b, ok := progs.ByName(*app)
	if !ok {
		fmt.Fprintf(os.Stderr, "autoarch: unknown app %q\n", *app)
		os.Exit(2)
	}
	sc, ok := workload.ParseScale(*scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "autoarch: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	var space *config.Space
	switch *spaceName {
	case "full":
		space = config.FullSpace()
	case "dcache":
		space = config.DcacheGeometrySpace()
	default:
		fmt.Fprintf(os.Stderr, "autoarch: unknown space %q\n", *spaceName)
		os.Exit(2)
	}

	tuner := &core.Tuner{Space: space, Scale: sc, Workers: *workers}
	weights := core.Weights{W1: *w1, W2: *w2}

	var model *core.Model
	if *loadModel != "" {
		var err error
		model, err = core.LoadModel(*loadModel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "autoarch: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("loaded model for %s (%d variables, %s scale)\n",
			model.App, model.Space.Len(), model.Scale)
	} else {
		fmt.Printf("building cost model for %s (%d variables, %s scale)...\n", b.Name, space.Len(), sc)
		start := time.Now()
		var err error
		model, err = tuner.BuildModel(b)
		if err != nil {
			fmt.Fprintf(os.Stderr, "autoarch: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("model built in %v: base %d cycles (%.6f s), %v\n",
			time.Since(start).Round(time.Millisecond), model.BaseCycles,
			float64(model.BaseCycles)/25e6, model.BaseResources)
	}
	if *saveModel != "" {
		if err := core.SaveModel(model, *saveModel); err != nil {
			fmt.Fprintf(os.Stderr, "autoarch: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("model saved to %s\n", *saveModel)
	}

	if *showModel {
		fmt.Printf("\n%-22s %12s %9s %6s %6s\n", "variable", "cycles", "rho%", "lam", "beta")
		for _, e := range model.Entries {
			fmt.Printf("%-22s %12d %+9.3f %+6d %+6d\n", e.Var.Name, e.Cycles, e.Rho, e.Lambda, e.Beta)
		}
		fmt.Println()
	}

	rec, err := tuner.RecommendFromModel(model, weights)
	if err != nil {
		fmt.Fprintf(os.Stderr, "autoarch: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nsolved BINLP (w1=%g, w2=%g): %d nodes, proven=%t, objective %.3f\n",
		*w1, *w2, rec.SolverNodes, rec.Proven, rec.Objective)
	if len(rec.Changes) == 0 {
		fmt.Println("recommendation: keep the base configuration")
	} else {
		fmt.Printf("recommendation: %s\n", strings.Join(rec.Changes, " "))
	}
	fmt.Printf("predicted: runtime %.6f s (%+.2f%%), LUTs %d%% (nonlin %d%%), BRAM %d%% (lin %d%%)\n",
		rec.Predicted.RuntimeCycles/25e6, rec.Predicted.RuntimePct,
		rec.Predicted.LUTPctLinear, rec.Predicted.LUTPctNonlinear,
		rec.Predicted.BRAMPctNonlinear, rec.Predicted.BRAMPctLinear)

	val, err := tuner.Validate(b, model, rec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "autoarch: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("actual:    runtime %.6f s (%+.2f%%), %v\n",
		float64(val.Cycles)/25e6, val.RuntimePct, val.Resources)
}
