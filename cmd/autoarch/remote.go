package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"liquidarch/internal/core"
	"liquidarch/internal/serve"
)

// parseWeightSweep parses a -sweep-weights list: comma-separated
// weightings, each "w1:w2" or "w1:w2:w3".
func parseWeightSweep(s string) ([]core.Weights, error) {
	if s == "" {
		return nil, nil
	}
	var out []core.Weights
	for _, item := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("bad weighting %q: want w1:w2 or w1:w2:w3", item)
		}
		var w core.Weights
		for i, dst := range []*float64{&w.W1, &w.W2, &w.W3}[:len(parts)] {
			v, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
			if err != nil {
				return nil, fmt.Errorf("bad weighting %q: %v", item, err)
			}
			*dst = v
		}
		out = append(out, w)
	}
	return out, nil
}

// runSweep executes a local weight sweep as one session batch: the
// first weighting builds the model, the rest reuse it and only solve.
func runSweep(ctx context.Context, sess *core.Session, base core.Request, ws []core.Weights, jsonOut bool, stdout, stderr, progress io.Writer) int {
	fmt.Fprintf(progress, "sweeping %d weightings of %s (one model build, %d solves)...\n",
		len(ws), base.App, len(ws))
	reqs := make([]core.Request, len(ws))
	for i, w := range ws {
		r := base
		r.Weights = w
		reqs[i] = r
	}
	start := time.Now()
	reports, err := sess.TuneBatch(ctx, reqs)
	if err != nil {
		fmt.Fprintf(stderr, "autoarch: %v\n", err)
		return 1
	}
	fmt.Fprintf(progress, "swept in %v\n", time.Since(start).Round(time.Millisecond))

	if jsonOut {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "autoarch: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, string(data))
		return 0
	}
	fmt.Fprintf(stdout, "\n%-16s %10s %10s  %s\n", "weights", "runtime%", "actual%", "recommended changes")
	for _, rep := range reports {
		changes := strings.Join(rep.Recommendation.Changes, " ")
		if changes == "" {
			changes = "(keep base)"
		}
		wlabel := fmt.Sprintf("%g:%g", rep.Weights.W1, rep.Weights.W2)
		if rep.Weights.W3 != 0 {
			wlabel += fmt.Sprintf(":%g", rep.Weights.W3)
		}
		actual := "-"
		if rep.Validation != nil {
			actual = fmt.Sprintf("%+.2f", rep.Validation.RuntimePct)
		}
		fmt.Fprintf(stdout, "%-16s %+10.2f %10s  %s\n",
			wlabel, rep.Recommendation.Predicted.RuntimePct, actual, changes)
	}
	return 0
}

// remoteJob carries the flag values a -remote submission maps onto the
// daemon's wire request.
type remoteJob struct {
	app, scale, space   string
	w1, w2              float64
	workers             int
	includeModel        bool
	class               string
	phases              bool
	interval, switchPen uint64
	phaseThr            float64
	replay, online      bool
}

// request maps the flags onto the daemon's JobRequest.
func (r remoteJob) request() serve.JobRequest {
	req := serve.JobRequest{
		App:          r.app,
		Scale:        r.scale,
		Space:        r.space,
		W1:           &r.w1,
		W2:           &r.w2,
		Workers:      r.workers,
		IncludeModel: r.includeModel,
		Class:        r.class,
	}
	if r.phases {
		req.Phases = true
		req.IntervalInstructions = r.interval
		req.SwitchPenaltyCycles = r.switchPen
		req.PhaseThreshold = r.phaseThr
		req.Replay = r.replay
		req.Online = r.online
	}
	return req
}

// runRemote submits the job (or, with weightings, the batch) to a
// running autoarchd, polls it to completion, and prints the result
// document — always JSON, since the daemon's documents are the wire
// format.
func runRemote(ctx context.Context, baseURL string, rj remoteJob, ws []core.Weights, jsonOut bool, stdout, stderr, progress io.Writer) int {
	baseURL = strings.TrimRight(baseURL, "/")
	var path string
	var payload any
	if len(ws) > 0 {
		weightings := make([]serve.Weighting, len(ws))
		for i, w := range ws {
			weightings[i] = serve.Weighting{W1: w.W1, W2: w.W2, W3: w.W3}
		}
		path = "/v1/batch"
		payload = serve.BatchRequest{JobRequest: rj.request(), Weightings: weightings}
	} else {
		path = "/v1/jobs"
		payload = rj.request()
	}
	body, err := json.Marshal(payload)
	if err != nil {
		fmt.Fprintf(stderr, "autoarch: %v\n", err)
		return 1
	}
	st, err := postJSON(ctx, baseURL+path, body)
	if err != nil {
		fmt.Fprintf(stderr, "autoarch: %v\n", err)
		return 1
	}
	fmt.Fprintf(progress, "submitted %s to %s (%s)\n", st.ID, baseURL, st.State)

	lastDone := -1
	for !st.Terminal() {
		select {
		case <-ctx.Done():
			fmt.Fprintf(stderr, "autoarch: %v\n", ctx.Err())
			return 1
		case <-time.After(250 * time.Millisecond):
		}
		st, err = getStatus(ctx, baseURL+"/v1/jobs/"+st.ID)
		if err != nil {
			fmt.Fprintf(stderr, "autoarch: %v\n", err)
			return 1
		}
		if st.Progress != nil && st.Progress.Done != lastDone {
			lastDone = st.Progress.Done
			fmt.Fprintf(progress, "measured %d of %d\n", st.Progress.Done, st.Progress.Total)
		}
	}
	switch st.State {
	case serve.StateDone:
		var doc any
		switch {
		case st.Results != nil:
			doc = st.Results
		case st.PhaseResult != nil:
			doc = st.PhaseResult
		default:
			doc = st.Result
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "autoarch: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, string(data))
		return 0
	default:
		fmt.Fprintf(stderr, "autoarch: job %s %s: %s\n", st.ID, st.State, st.Error)
		return 1
	}
}

// postJSON submits a job document and decodes the accepted JobStatus.
func postJSON(ctx context.Context, url string, body []byte) (serve.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return serve.JobStatus{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	return doStatus(req)
}

// getStatus fetches a JobStatus.
func getStatus(ctx context.Context, url string) (serve.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return serve.JobStatus{}, err
	}
	return doStatus(req)
}

func doStatus(req *http.Request) (serve.JobStatus, error) {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return serve.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return serve.JobStatus{}, fmt.Errorf("%s: %s", req.URL.Path, e.Error)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return serve.JobStatus{}, err
	}
	return st, nil
}
