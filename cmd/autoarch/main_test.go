package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"liquidarch/internal/core"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestJSONGolden locks the -json document byte-for-byte: it is the shared
// serialization the autoarchd daemon also emits, so accidental drift here
// is an API break, not a cosmetic change. The workload and simulator are
// deterministic, which is what makes a byte-exact golden possible.
func TestJSONGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-app", "arith", "-scale", "tiny", "-space", "dcache", "-json"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d, stderr:\n%s", code, stderr.String())
	}

	golden := filepath.Join("testdata", "arith_tiny_dcache.json.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	// Byte-exact, solver_nodes included: the BINLP solver iterates its
	// coefficients in sorted order, so the node count is reproducible.
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("-json output differs from golden file %s\ngot:\n%s\nwant:\n%s",
			golden, stdout.Bytes(), want)
	}

	// The document must round-trip as a core.TuneReport — the contract
	// the daemon's clients rely on.
	var report core.TuneReport
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("output is not a TuneReport: %v", err)
	}
	if report.App != "arith" || report.Scale != "tiny" {
		t.Errorf("report identifies %s/%s, want arith/tiny", report.App, report.Scale)
	}
	if report.Base.Cycles == 0 || report.Validation.Cycles == 0 {
		t.Errorf("report missing measurements: base %d, validation %d cycles",
			report.Base.Cycles, report.Validation.Cycles)
	}
}

// TestPhasesJSONGolden locks the -phases -json document byte-for-byte —
// the serialization autoarchd's phase jobs share. It doubles as the
// phase-determinism gate for the full CLI path: interval profiling,
// detection, per-phase solves and the schedule decision must all be
// byte-reproducible for the golden to hold.
func TestPhasesJSONGolden(t *testing.T) {
	args := []string{"-app", "mix", "-scale", "tiny", "-space", "dcache",
		"-phases", "-interval", "20000", "-json"}
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), args, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d, stderr:\n%s", code, stderr.String())
	}

	golden := filepath.Join("testdata", "mix_tiny_dcache_phases.json.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("-phases -json output differs from golden file %s\ngot:\n%s\nwant:\n%s",
			golden, stdout.Bytes(), want)
	}

	// Re-run: same bytes within one process too (shared caches included).
	var again bytes.Buffer
	if code := run(context.Background(), args, &again, &stderr); code != 0 {
		t.Fatalf("second run exited %d", code)
	}
	if !bytes.Equal(stdout.Bytes(), again.Bytes()) {
		t.Error("-phases -json output not reproducible within one process")
	}

	var report core.Report
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("output is not a core.Report: %v", err)
	}
	ph := report.Phases
	if report.App != "mix" || ph == nil || ph.Trace == nil || ph.Trace.Phases == 0 {
		t.Errorf("report incomplete: app %s, phases %+v", report.App, ph)
	}
	if ph != nil && (len(ph.Recommendations) != ph.Trace.Phases || len(ph.Schedule) == 0) {
		t.Errorf("report missing phase recommendations or schedule")
	}
}

// TestJSONStdoutClean ensures -json keeps stdout pure JSON (progress goes
// to stderr).
func TestJSONStdoutClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-app", "arith", "-scale", "tiny", "-space", "dcache", "-json"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d", code)
	}
	var v any
	if err := json.Unmarshal(stdout.Bytes(), &v); err != nil {
		t.Fatalf("stdout is not pure JSON: %v\n%s", err, stdout.String())
	}
	if stderr.Len() == 0 {
		t.Error("expected progress lines on stderr in -json mode")
	}
}

// TestReplayFlag: `autoarch -replay -online` (each implying -phases)
// must surface the modeled-vs-replayed error figure and the online
// divergence count in both output modes — the CLI half of the
// conformance loop.
func TestReplayFlag(t *testing.T) {
	args := []string{"-app", "mix", "-scale", "tiny", "-space", "dcache",
		"-interval", "20000", "-replay", "-online"}
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), args, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"replay:", "online:", "error ", "divergences from schedule:"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}

	var jsonOut bytes.Buffer
	code = run(context.Background(), append(args, "-json"), &jsonOut, &stderr)
	if code != 0 {
		t.Fatalf("-json run exited %d, stderr:\n%s", code, stderr.String())
	}
	var report core.Report
	if err := json.Unmarshal(jsonOut.Bytes(), &report); err != nil {
		t.Fatalf("output is not a core.Report: %v", err)
	}
	if report.Replay == nil || report.Online == nil {
		t.Fatal("report missing replay/online blocks")
	}
	if report.Replay.ActualCycles == 0 || report.Replay.ModeledCycles == 0 {
		t.Error("replay block missing the modeled-vs-replayed figures")
	}
	if report.Replay.ActualCycles != report.Replay.SimulatedCycles+report.Replay.SwitchCostCycles {
		t.Error("replay actual cycles do not account simulated + switch cost")
	}
}
