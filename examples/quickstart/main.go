// Quickstart: run one of the paper's benchmarks on the out-of-the-box
// LEON2 configuration, read its cycle-accurate profile (paper Section
// 2), then let the unified tuning pipeline — one core.Session.Tune call
// — recommend an application-specific configuration end to end.
//
// Pass -scale tiny for a sub-second run (the CI smoke test does).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"liquidarch/internal/config"
	"liquidarch/internal/core"
	"liquidarch/internal/fpga"
	"liquidarch/internal/platform"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

func main() {
	scaleName := flag.String("scale", "small", "workload scale: tiny, small, medium, paper")
	flag.Parse()
	scale, ok := workload.ParseScale(*scaleName)
	if !ok {
		log.Fatalf("unknown scale %q", *scaleName)
	}

	// Pick the application and workload size.
	blastn, _ := progs.ByName("blastn")
	prog, err := blastn.Assemble(scale)
	if err != nil {
		log.Fatal(err)
	}

	// The base configuration is the paper's starting point.
	cfg := config.Default()
	res := fpga.MustSynthesize(cfg)
	fmt.Printf("base configuration synthesizes to %v\n", res)

	// Execute directly on the simulated processor (no OS), exactly as the
	// paper runs its benchmarks, and read the hardware profiler.
	rep, err := platform.Run(prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BLASTN: %d cycles = %.4f s at 25 MHz (CPI %.3f)\n",
		rep.Cycles(), rep.Seconds(), rep.Stats.CPI())
	fmt.Printf("result checksum %#x (golden model: %#x)\n",
		rep.Checksum, blastn.Golden(scale))

	// Any Figure 1 parameter can be changed before a run.
	cfg.DCache.SetSizeKB = 32
	rep32, err := platform.Run(prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	gain := 100 * (float64(rep.Cycles()) - float64(rep32.Cycles())) / float64(rep.Cycles())
	fmt.Printf("with a 32 KB dcache: %d cycles (%.2f%% faster)\n", rep32.Cycles(), gain)

	// The whole technique is one request through the unified pipeline:
	// measure the base and every single-change configuration, solve the
	// BINLP, validate the winner. The same Session.Tune call serves the
	// autoarch CLI, the autoarchd daemon and the experiment harnesses.
	sess := core.NewSession(core.SessionOptions{})
	report, err := sess.Tune(context.Background(), core.Request{
		App:   "blastn",
		Scale: scale,
		// Weights zero value = the paper's runtime weighting (w1=100, w2=1).
	})
	if err != nil {
		log.Fatal(err)
	}
	changes := strings.Join(report.Recommendation.Changes, " ")
	if changes == "" {
		changes = "(keep base)"
	}
	fmt.Printf("\ntuned for runtime: %s\n", changes)
	fmt.Printf("validated: %.4f s (%+.2f%% vs base), LUTs %d%%, BRAM %d%%\n",
		report.Validation.Seconds, report.Validation.RuntimePct,
		report.Validation.LUTPct, report.Validation.BRAMPct)
}
