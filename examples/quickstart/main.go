// Quickstart: run one of the paper's benchmarks on the out-of-the-box
// LEON2 configuration and read its cycle-accurate profile — the minimal
// use of the platform (paper Section 2).
package main

import (
	"fmt"
	"log"

	"liquidarch/internal/config"
	"liquidarch/internal/fpga"
	"liquidarch/internal/platform"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

func main() {
	// Pick the application and workload size.
	blastn, _ := progs.ByName("blastn")
	prog, err := blastn.Assemble(workload.Small)
	if err != nil {
		log.Fatal(err)
	}

	// The base configuration is the paper's starting point.
	cfg := config.Default()
	res := fpga.MustSynthesize(cfg)
	fmt.Printf("base configuration synthesizes to %v\n", res)

	// Execute directly on the simulated processor (no OS), exactly as the
	// paper runs its benchmarks, and read the hardware profiler.
	rep, err := platform.Run(prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BLASTN: %d cycles = %.4f s at 25 MHz (CPI %.3f)\n",
		rep.Cycles(), rep.Seconds(), rep.Stats.CPI())
	fmt.Printf("result checksum %#x (golden model: %#x)\n",
		rep.Checksum, blastn.Golden(workload.Small))

	// Any Figure 1 parameter can be changed before a run.
	cfg.DCache.SetSizeKB = 32
	rep32, err := platform.Run(prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	gain := 100 * (float64(rep.Cycles()) - float64(rep32.Cycles())) / float64(rep.Cycles())
	fmt.Printf("with a 32 KB dcache: %d cycles (%.2f%% faster)\n", rep32.Cycles(), gain)
}
