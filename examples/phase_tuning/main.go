// Phase-aware tuning walkthrough: a workload whose phases want opposite
// hardware, where switching configurations at phase boundaries beats any
// single configuration — the reconfiguration cost included.
//
// The mix benchmark streams a 512 KB buffer sequentially (long cache
// lines amortize the fill lead time) and then probes it at random word
// offsets (nearly every probe misses, so short lines halve the miss
// penalty). Those two demands land in the same at-most-one decision
// group — the data-cache line size — so the whole-program optimizer must
// pick one value for both phases, while per-phase tuning picks each.
//
// Each mid-run reconfiguration is charged for what it actually changes:
// the switch penalty prices a full reshape of every parameter group, and
// a transition flipping only the dcache geometry pays its proportional
// share — the partial-reconfiguration pricing of real FPGAs, where
// rewriting fewer frames takes less time.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"liquidarch/internal/core"
	"liquidarch/internal/workload"
)

func main() {
	sess := core.NewSession(core.SessionOptions{})

	// Profile the base run in 100k-instruction intervals, detect phases,
	// build one cost model per phase from the same single-change runs the
	// whole-program model uses, and solve each — one request through the
	// unified pipeline.
	rep, err := sess.Tune(context.Background(), core.Request{
		App:     "mix",
		Scale:   workload.Small,
		Weights: core.RuntimeWeights(),
		Phases: &core.PhaseOptions{
			IntervalInstructions: 100_000,
			// 25 000 cycles = 1 ms at 25 MHz for a full reconfiguration;
			// each switch pays the share it actually rewrites.
			SwitchPenaltyCycles: core.DefaultSwitchPenaltyCycles,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ph := rep.Phases

	fmt.Printf("%s at %s scale: %d intervals of %d instructions, %d phases\n\n",
		rep.App, rep.Scale, len(ph.Trace.Assignments), ph.IntervalInstructions, ph.Trace.Phases)

	fmt.Println("per-phase recommendations:")
	for _, p := range ph.Recommendations {
		changes := strings.Join(p.Recommendation.Changes, " ")
		if changes == "" {
			changes = "(keep base)"
		}
		fmt.Printf("  phase %d (%2d intervals, %8d base cycles): %s\n",
			p.Phase, p.Intervals, p.BaseCycles, changes)
	}
	fmt.Printf("\nwhole-program recommendation: %s\n", strings.Join(rep.Recommendation.Changes, " "))

	fmt.Printf("\nreconfiguration schedule (%d switches, full reshape %d cycles, %d cycles actually charged):\n",
		ph.Switches, ph.SwitchPenaltyCycles, ph.SwitchCostCycles)
	for _, seg := range ph.Schedule {
		marker := "      "
		if seg.Switch {
			marker = fmt.Sprintf("switch %d params/%6d cyc", seg.ChangedVars, seg.SwitchCostCycles)
		}
		fmt.Printf("  %-24s  intervals %2d-%2d -> phase %d config\n", marker, seg.Start, seg.End, seg.Phase)
	}

	fmt.Printf("\nmodeled whole-run cycles:\n")
	fmt.Printf("  per-phase schedule: %.0f (switch costs included)\n", ph.PerPhaseCycles)
	fmt.Printf("  whole-program:      %.0f\n", ph.WholeProgramCycles)
	if ph.PerPhaseWins {
		fmt.Printf("per-phase reconfiguration wins by %.2f%%\n", ph.SavingsPct)
	} else {
		fmt.Printf("whole-program configuration wins by %.2f%%\n", -ph.SavingsPct)
	}
}
