// Phase-aware tuning walkthrough: a workload whose phases want opposite
// hardware, where switching configurations at phase boundaries beats any
// single configuration — the reconfiguration penalty included.
//
// The mix benchmark streams a 512 KB buffer sequentially (long cache
// lines amortize the fill lead time) and then probes it at random word
// offsets (nearly every probe misses, so short lines halve the miss
// penalty). Those two demands land in the same at-most-one decision
// group — the data-cache line size — so the whole-program optimizer must
// pick one value for both phases, while per-phase tuning picks each.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"liquidarch/internal/core"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

func main() {
	mix, _ := progs.ByName("mix")
	tuner := core.NewTuner(workload.Small)

	// Profile the base run in 100k-instruction intervals, detect phases,
	// build one cost model per phase from the same single-change runs the
	// whole-program model uses, and solve each.
	rep, err := tuner.TunePhases(context.Background(), mix, core.RuntimeWeights(), core.PhaseOptions{
		IntervalInstructions: 100_000,
		// 25 000 cycles = 1 ms of FPGA partial reconfiguration at 25 MHz.
		SwitchPenaltyCycles: core.DefaultSwitchPenaltyCycles,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s at %s scale: %d intervals of %d instructions, %d phases\n\n",
		rep.App, rep.Scale, len(rep.Trace.Assignments), rep.IntervalInstructions, rep.Trace.Phases)

	fmt.Println("per-phase recommendations:")
	for _, p := range rep.Phases {
		changes := strings.Join(p.Recommendation.Changes, " ")
		if changes == "" {
			changes = "(keep base)"
		}
		fmt.Printf("  phase %d (%2d intervals, %8d base cycles): %s\n",
			p.Phase, p.Intervals, p.BaseCycles, changes)
	}
	fmt.Printf("\nwhole-program recommendation: %s\n", strings.Join(rep.WholeProgram.Changes, " "))

	fmt.Printf("\nreconfiguration schedule (%d switches, %d cycles each):\n",
		rep.Switches, rep.SwitchPenaltyCycles)
	for _, seg := range rep.Schedule {
		marker := "      "
		if seg.Switch {
			marker = "switch"
		}
		fmt.Printf("  %s  intervals %2d-%2d -> phase %d config\n", marker, seg.Start, seg.End, seg.Phase)
	}

	fmt.Printf("\nmodeled whole-run cycles:\n")
	fmt.Printf("  per-phase schedule: %.0f (switch penalties included)\n", rep.PerPhaseCycles)
	fmt.Printf("  whole-program:      %.0f\n", rep.WholeProgramCycles)
	if rep.PerPhaseWins {
		fmt.Printf("per-phase reconfiguration wins by %.2f%%\n", rep.SavingsPct)
	} else {
		fmt.Printf("whole-program configuration wins by %.2f%%\n", -rep.SavingsPct)
	}
}
