// BLASTN tuning: the paper's headline flow (Figure 5, BLASTN column) as
// a library client — one core.Request through Session.Tune builds the
// one-change-at-a-time cost model, solves the BINLP with
// runtime-dominant weights, and validates the recommendation with an
// actual build and run. The report's Artifacts expose the measured
// model for inspection.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"liquidarch/internal/core"
	"liquidarch/internal/workload"
)

func main() {
	sess := core.NewSession(core.SessionOptions{})

	fmt.Println("measuring the base configuration and 52 single-change configurations...")
	rep, err := sess.Tune(context.Background(), core.Request{
		App:     "blastn",
		Scale:   workload.Small,
		Weights: core.RuntimeWeights(), // w1=100, w2=1
	})
	if err != nil {
		log.Fatal(err)
	}
	model := rep.Artifacts.Model
	fmt.Printf("base: %.4f s, %v\n",
		float64(model.BaseCycles)/25e6, model.BaseResources)

	// The most informative perturbations, like the paper's Figure 6.
	fmt.Println("\nstrongest measured effects:")
	for _, e := range model.Entries {
		if e.Rho < -1 || e.Rho > 5 {
			fmt.Printf("  %-22s runtime %+6.2f%%  ΔLUT %+d%%  ΔBRAM %+d%%\n",
				e.Var.Name, e.Rho, e.Lambda, e.Beta)
		}
	}

	rec := rep.Recommendation
	fmt.Printf("\nrecommended changes (w1=100, w2=1): %s\n", strings.Join(rec.Changes, " "))
	fmt.Printf("predicted: %.4f s (%+.2f%%), LUT %d%%, BRAM %d%%\n",
		rec.Predicted.RuntimeCycles/25e6, rec.Predicted.RuntimePct,
		rec.Predicted.LUTPctLinear, rec.Predicted.BRAMPctNonlinear)

	val := rep.Validation
	fmt.Printf("actual:    %.4f s (%+.2f%%), LUT %d%%, BRAM %d%%\n",
		val.Seconds, val.RuntimePct, val.LUTPct, val.BRAMPct)
	fmt.Printf("\nthe tradeoff took %d measured configurations instead of %d exhaustive ones\n",
		1+model.Space.Len()+4, 910393344)
}
