// BLASTN tuning: the paper's headline flow (Figure 5, BLASTN column) as a
// library client — build the one-change-at-a-time cost model, solve the
// BINLP with runtime-dominant weights, and validate the recommendation
// with an actual build and run.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"liquidarch/internal/core"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

func main() {
	blastn, _ := progs.ByName("blastn")
	tuner := core.NewTuner(workload.Small)

	fmt.Println("measuring the base configuration and 52 single-change configurations...")
	model, err := tuner.BuildModel(context.Background(), blastn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base: %.4f s, %v\n",
		float64(model.BaseCycles)/25e6, model.BaseResources)

	// The most informative perturbations, like the paper's Figure 6.
	fmt.Println("\nstrongest measured effects:")
	for _, e := range model.Entries {
		if e.Rho < -1 || e.Rho > 5 {
			fmt.Printf("  %-22s runtime %+6.2f%%  ΔLUT %+d%%  ΔBRAM %+d%%\n",
				e.Var.Name, e.Rho, e.Lambda, e.Beta)
		}
	}

	rec, err := tuner.RecommendFromModel(model, core.RuntimeWeights())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommended changes (w1=100, w2=1): %s\n", strings.Join(rec.Changes, " "))
	fmt.Printf("predicted: %.4f s (%+.2f%%), LUT %d%%, BRAM %d%%\n",
		rec.Predicted.RuntimeCycles/25e6, rec.Predicted.RuntimePct,
		rec.Predicted.LUTPctLinear, rec.Predicted.BRAMPctNonlinear)

	val, err := tuner.Validate(context.Background(), blastn, model, rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("actual:    %.4f s (%+.2f%%), %v\n",
		float64(val.Cycles)/25e6, val.RuntimePct, val.Resources)
	fmt.Printf("\nthe tradeoff took %d measured configurations instead of %d exhaustive ones\n",
		1+model.Space.Len()+4, 910393344)
}
