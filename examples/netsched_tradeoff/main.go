// Network-processing tradeoff: sweep the paper's objective weights for the
// two CommBench kernels (DRR scheduling and FRAG fragmentation) and print
// the runtime-vs-resources frontier an embedded designer would choose
// from — the scenario the paper's introduction motivates.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"liquidarch/internal/core"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

func main() {
	weightings := []core.Weights{
		{W1: 100, W2: 0}, // pure runtime
		{W1: 100, W2: 1}, // the paper's runtime optimization
		{W1: 10, W2: 10}, // balanced
		{W1: 1, W2: 100}, // the paper's resource optimization
	}

	for _, app := range []string{"drr", "frag"} {
		b, _ := progs.ByName(app)
		tuner := core.NewTuner(workload.Small)
		model, err := tuner.BuildModel(context.Background(), b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s (base %.4f s, %v) ===\n",
			strings.ToUpper(app), float64(model.BaseCycles)/25e6, model.BaseResources)
		fmt.Printf("%-12s %-12s %-10s %-8s %s\n", "w1/w2", "runtime(s)", "Δruntime", "BRAM%", "changes")
		for _, w := range weightings {
			rec, err := tuner.RecommendFromModel(model, w)
			if err != nil {
				log.Fatal(err)
			}
			val, err := tuner.Validate(context.Background(), b, model, rec)
			if err != nil {
				log.Fatal(err)
			}
			changes := strings.Join(rec.Changes, " ")
			if changes == "" {
				changes = "(keep base)"
			}
			fmt.Printf("%-12s %-12.4f %-10s %-8d %s\n",
				fmt.Sprintf("%g/%g", w.W1, w.W2),
				float64(val.Cycles)/25e6,
				fmt.Sprintf("%+.2f%%", val.RuntimePct),
				val.Resources.BRAMPercent(),
				changes)
		}
		fmt.Println()
	}
}
