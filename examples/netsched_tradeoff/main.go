// Network-processing tradeoff: sweep the paper's objective weights for
// the two CommBench kernels (DRR scheduling and FRAG fragmentation) and
// print the runtime-vs-resources frontier an embedded designer would
// choose from — the scenario the paper's introduction motivates.
//
// Each weighting is its own Session.Tune request; the session's shared
// model layer builds each application's 52-measurement model exactly
// once and re-solves it per weighting, so the whole four-point frontier
// costs one model build per kernel.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"liquidarch/internal/core"
	"liquidarch/internal/workload"
)

func main() {
	weightings := []core.Weights{
		{W1: 100, W2: 0}, // pure runtime
		{W1: 100, W2: 1}, // the paper's runtime optimization
		{W1: 10, W2: 10}, // balanced
		{W1: 1, W2: 100}, // the paper's resource optimization
	}

	sess := core.NewSession(core.SessionOptions{})
	for _, app := range []string{"drr", "frag"} {
		var header bool
		for _, w := range weightings {
			rep, err := sess.Tune(context.Background(), core.Request{
				App:     app,
				Scale:   workload.Small,
				Weights: w,
			})
			if err != nil {
				log.Fatal(err)
			}
			if !header {
				header = true
				fmt.Printf("=== %s (base %.4f s, LUTs %d%%, BRAM %d%%) ===\n",
					strings.ToUpper(app), rep.Base.Seconds, rep.Base.LUTPct, rep.Base.BRAMPct)
				fmt.Printf("%-12s %-12s %-10s %-8s %s\n", "w1/w2", "runtime(s)", "Δruntime", "BRAM%", "changes")
			}
			changes := strings.Join(rep.Recommendation.Changes, " ")
			if changes == "" {
				changes = "(keep base)"
			}
			fmt.Printf("%-12s %-12.4f %-10s %-8d %s\n",
				fmt.Sprintf("%g/%g", w.W1, w.W2),
				rep.Validation.Seconds,
				fmt.Sprintf("%+.2f%%", rep.Validation.RuntimePct),
				rep.Validation.BRAMPct,
				changes)
		}
		fmt.Println()
	}

	stats := sess.ModelStats()
	fmt.Printf("model layer: %d builds served %d requests (%d shared)\n",
		stats.Builds, stats.Hits+stats.Misses, stats.Hits)
}
