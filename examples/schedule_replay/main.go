// Schedule replay and online adaptation walkthrough: closing the loop
// on phase-aware tuning.
//
// Phase tuning produces a *modeled* verdict — per-phase cycle
// predictions plus priced reconfigurations. This example checks that
// model against reality twice:
//
//   - Replay executes the precomputed schedule in one simulation,
//     reshaping the platform at every segment boundary (architectural
//     state carries across via the same window-flush handoff a context
//     switch performs) and reports the actual cycles next to the
//     modeled ones — the conformance error.
//
//   - Online drops the schedule entirely: after every interval the
//     platform classifies the live 64-bucket block signature against
//     the detected phases' representative signatures and switches
//     configuration on its own — a closed-loop controller. Its report
//     counts how often that controller diverged from the schedule (with
//     stable phases: at most one reaction-lag interval per switch).
//
// Pass -scale tiny for a sub-second run (the CI smoke test does).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"liquidarch/internal/core"
	"liquidarch/internal/workload"
)

func main() {
	scaleName := flag.String("scale", "small", "workload scale: tiny, small, medium, paper")
	flag.Parse()
	scale, ok := workload.ParseScale(*scaleName)
	if !ok {
		log.Fatalf("unknown scale %q", *scaleName)
	}

	sess := core.NewSession(core.SessionOptions{})
	interval := uint64(core.DefaultIntervalInstructions)
	if scale == workload.Tiny {
		interval = 20_000 // tiny runs retire too few instructions for the default slicing
	}

	// One request carries the whole loop: profile, detect, tune per
	// phase, then replay the schedule and run the online controller.
	// Replay and Online are decision-half flags — every measurement
	// below them is the same cached single-change run plain phase
	// tuning performs.
	rep, err := sess.Tune(context.Background(), core.Request{
		App:     "mix",
		Scale:   scale,
		Weights: core.RuntimeWeights(),
		Phases:  &core.PhaseOptions{IntervalInstructions: interval},
		Replay:  true,
		Online:  true,
	})
	if err != nil {
		log.Fatal(err)
	}

	ph := rep.Phases
	fmt.Printf("%s at %s scale: %d phases, modeled schedule cost %.0f cycles\n\n",
		rep.App, rep.Scale, ph.Trace.Phases, ph.PerPhaseCycles)

	fmt.Printf("schedule replay (%d segments, %d switches):\n",
		len(rep.Replay.Segments), rep.Replay.Switches)
	for _, seg := range rep.Replay.Segments {
		marker := ""
		if seg.Switch {
			marker = fmt.Sprintf("  <- switch, %d cycles", seg.SwitchCostCycles)
		}
		fmt.Printf("  intervals %2d-%2d under phase %d config: %8d cycles%s\n",
			seg.Start, seg.End, seg.Phase, seg.Cycles, marker)
	}
	fmt.Printf("replayed %d cycles vs modeled %.0f: conformance error %+.3f%%\n\n",
		rep.Replay.ActualCycles, rep.Replay.ModeledCycles, rep.Replay.ErrorPct)

	on := rep.Online
	fmt.Printf("online adaptation (no schedule, %d switches):\n", on.Switches)
	for _, seg := range on.Segments {
		fmt.Printf("  intervals %2d-%2d classified as phase %d: %8d cycles\n",
			seg.Start, seg.End, seg.Phase, seg.Cycles)
	}
	fmt.Printf("online %d cycles vs modeled %.0f: error %+.3f%%\n",
		on.ActualCycles, on.ModeledCycles, on.ErrorPct)
	fmt.Printf("divergence from the precomputed schedule: %d of %d intervals (%d unclassified)\n",
		on.Divergences, len(ph.Trace.Assignments), on.Unclassified)
}
