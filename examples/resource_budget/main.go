// Resource-budget tuning: tune an application for best runtime under a
// tightened BRAM budget — a smaller FPGA than the paper's XCV2000E. This
// shows the unified pipeline's composability: obtain the measured model
// through one Session.Tune request, tighten the Section 4 device
// constraint, solve directly with the BINLP solver, and validate each
// budget's winner through the session's own measurement provider (so
// repeated runs replay from its cache).
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"liquidarch/internal/binlp"
	"liquidarch/internal/core"
	"liquidarch/internal/fpga"
	"liquidarch/internal/platform"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

func main() {
	ctx := context.Background()
	sess := core.NewSession(core.SessionOptions{})

	// One request builds (and caches) the model; the budget study below
	// only re-solves it, so this is the single measured step.
	rep, err := sess.Tune(ctx, core.Request{
		App:            "blastn",
		Scale:          workload.Small,
		Weights:        core.RuntimeWeights(),
		SkipValidation: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	model := rep.Artifacts.Model

	blastn, _ := progs.ByName("blastn")
	prog, err := blastn.Assemble(workload.Small)
	if err != nil {
		log.Fatal(err)
	}

	// Headroom scenarios: percentage points of BRAM the configuration may
	// grow beyond the base (the real device leaves 49).
	budgets := []float64{49, 20, 10, 0}
	fmt.Printf("tuning BLASTN runtime under shrinking BRAM budgets (base %v)\n\n", model.BaseResources)
	fmt.Printf("%-10s %-12s %-10s %-7s %s\n", "ΔBRAM cap", "runtime(s)", "Δruntime", "BRAM%", "changes")

	for _, budget := range budgets {
		problem := model.Formulate(core.RuntimeWeights())
		for _, c := range problem.Constraints {
			if strings.Contains(c.Name, "BRAM") {
				c.Bound = budget
			}
		}
		sol, err := binlp.Solve(problem, binlp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		cfg, err := model.Space.Decode(sol.X)
		if err != nil {
			log.Fatal(err)
		}
		res := fpga.MustSynthesize(cfg)
		if !res.FitsDevice() {
			log.Fatalf("budget %v produced an infeasible configuration", budget)
		}
		// Validate the budget's winner for real, reusing the session's
		// measurement cache (the base-budget winner replays the model
		// build's own run).
		run, err := sess.Provider().Measure(ctx, prog, cfg, platform.Options{})
		if err != nil {
			log.Fatal(err)
		}
		runtimePct := 100 * (float64(run.Cycles()) - float64(model.BaseCycles)) / float64(model.BaseCycles)
		var changes []string
		for i, on := range sol.X {
			if on {
				changes = append(changes, model.Space.Vars()[i].Name)
			}
		}
		label := "(keep base)"
		if len(changes) > 0 {
			label = strings.Join(changes, " ")
		}
		fmt.Printf("%-10s %-12.4f %-10s %-7d %s\n",
			fmt.Sprintf("+%g%%", budget),
			float64(run.Cycles())/25e6,
			fmt.Sprintf("%+.2f%%", runtimePct),
			res.BRAMPercent(),
			label)
	}
	fmt.Println("\ntighter budgets trade away the large data cache first, keeping the")
	fmt.Println("multiplier and ICC-hold gains that cost no BRAM — the paper's")
	fmt.Println("performance-resource tradeoff in action.")
}
