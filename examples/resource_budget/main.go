// Resource-budget tuning: tune an application for best runtime under a
// tightened BRAM budget — a smaller FPGA than the paper's XCV2000E. This
// shows the library's composability: take the tuner's Section 4
// formulation, tighten the device constraint, and solve directly with the
// BINLP solver.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"liquidarch/internal/binlp"
	"liquidarch/internal/core"
	"liquidarch/internal/fpga"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

func main() {
	blastn, _ := progs.ByName("blastn")
	tuner := core.NewTuner(workload.Small)
	model, err := tuner.BuildModel(context.Background(), blastn)
	if err != nil {
		log.Fatal(err)
	}

	// Headroom scenarios: percentage points of BRAM the configuration may
	// grow beyond the base (the real device leaves 49).
	budgets := []float64{49, 20, 10, 0}
	fmt.Printf("tuning BLASTN runtime under shrinking BRAM budgets (base %v)\n\n", model.BaseResources)
	fmt.Printf("%-10s %-12s %-10s %-7s %s\n", "ΔBRAM cap", "runtime(s)", "Δruntime", "BRAM%", "changes")

	for _, budget := range budgets {
		problem := model.Formulate(core.RuntimeWeights())
		for _, c := range problem.Constraints {
			if strings.Contains(c.Name, "BRAM") {
				c.Bound = budget
			}
		}
		sol, err := binlp.Solve(problem, binlp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		cfg, err := model.Space.Decode(sol.X)
		if err != nil {
			log.Fatal(err)
		}
		res := fpga.MustSynthesize(cfg)
		if !res.FitsDevice() {
			log.Fatalf("budget %v produced an infeasible configuration", budget)
		}
		rec := &core.Recommendation{Config: cfg}
		val, err := tuner.Validate(context.Background(), blastn, model, rec)
		if err != nil {
			log.Fatal(err)
		}
		var changes []string
		for i, on := range sol.X {
			if on {
				changes = append(changes, model.Space.Vars()[i].Name)
			}
		}
		label := "(keep base)"
		if len(changes) > 0 {
			label = strings.Join(changes, " ")
		}
		fmt.Printf("%-10s %-12.4f %-10s %-7d %s\n",
			fmt.Sprintf("+%g%%", budget),
			float64(val.Cycles)/25e6,
			fmt.Sprintf("%+.2f%%", val.RuntimePct),
			val.Resources.BRAMPercent(),
			label)
	}
	fmt.Println("\ntighter budgets trade away the large data cache first, keeping the")
	fmt.Println("multiplier and ICC-hold gains that cost no BRAM — the paper's")
	fmt.Println("performance-resource tradeoff in action.")
}
